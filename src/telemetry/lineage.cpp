#include "telemetry/lineage.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "telemetry/export.hpp"

namespace kodan::telemetry {

namespace detail {

std::atomic<int> g_lineage_enabled{-1};

namespace {

bool
envTruthy(const char *value)
{
    return value != nullptr &&
           (std::strcmp(value, "1") == 0 ||
            std::strcmp(value, "true") == 0 ||
            std::strcmp(value, "on") == 0);
}

} // namespace

bool
resolveLineageEnabled()
{
    const bool on = envTruthy(std::getenv("KODAN_LINEAGE"));
    int expected = -1;
    g_lineage_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                              std::memory_order_relaxed);
    return g_lineage_enabled.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

namespace {

/** One thread's span buffer (same shape as JournalBuffer). */
class LineageBuffer
{
  public:
    void push(const LineageSpan &span)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans_.push_back(span);
    }

    void collectInto(std::vector<LineageSpan> &out) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.insert(out.end(), spans_.begin(), spans_.end());
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::vector<LineageSpan> spans_;
};

class LineageStore
{
  public:
    static LineageStore &instance()
    {
        // Leaked on purpose (thread_local pointers + atexit writers).
        static LineageStore *store = new LineageStore();
        return *store;
    }

    LineageBuffer &threadBuffer()
    {
        thread_local LineageBuffer *buffer = [this] {
            auto owned = std::make_unique<LineageBuffer>();
            LineageBuffer *raw = owned.get();
            std::lock_guard<std::mutex> lock(mutex_);
            buffers_.push_back(std::move(owned));
            return raw;
        }();
        return *buffer;
    }

    std::vector<LineageSpan> collect() const
    {
        std::vector<LineageSpan> spans;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            buffer->collectInto(spans);
        }
        std::sort(spans.begin(), spans.end(),
                  [](const LineageSpan &a, const LineageSpan &b) {
                      if (a.frame_id != b.frame_id) {
                          return a.frame_id < b.frame_id;
                      }
                      if (a.stage != b.stage) {
                          return a.stage < b.stage;
                      }
                      return a.t_s < b.t_s;
                  });
        return spans;
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            buffer->clear();
        }
    }

  private:
    LineageStore() = default;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<LineageBuffer>> buffers_;
};

std::string
lineageNumber(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace

const char *
lineageStageName(LineageStage stage)
{
    switch (stage) {
      case LineageStage::Captured:
        return "captured";
      case LineageStage::Decided:
        return "decided";
      case LineageStage::Enqueued:
        return "enqueued";
      case LineageStage::Contact:
        return "contact";
      case LineageStage::Downlinked:
        return "downlinked";
      case LineageStage::Received:
        return "received";
    }
    return "?";
}

bool
lineageStageFromName(const std::string &name, LineageStage &out)
{
    for (int i = 0; i < kLineageStageCount; ++i) {
        const auto stage = static_cast<LineageStage>(i);
        if (name == lineageStageName(stage)) {
            out = stage;
            return true;
        }
    }
    return false;
}

void
setLineageEnabled(bool on)
{
    detail::g_lineage_enabled.store(on ? 1 : 0,
                                    std::memory_order_relaxed);
}

void
recordLineageSpan(std::uint64_t frame_id, LineageStage stage, double t_s)
{
    if (!lineageEnabled()) {
        return;
    }
    LineageSpan span;
    span.frame_id = frame_id;
    span.stage = stage;
    span.t_s = t_s;
    LineageStore::instance().threadBuffer().push(span);
}

std::vector<LineageSpan>
collectLineage()
{
    return LineageStore::instance().collect();
}

void
clearLineage()
{
    LineageStore::instance().clear();
}

void
writeLineageJsonl(const std::vector<LineageSpan> &spans, std::ostream &os)
{
    os << "{\"kodan_lineage\": 1, \"spans\": " << spans.size() << "}\n";
    for (const LineageSpan &span : spans) {
        os << "{\"frame\": " << span.frame_id << ", \"sat\": "
           << lineageSatellite(span.frame_id) << ", \"ord\": "
           << lineageOrdinal(span.frame_id) << ", \"stage\": \""
           << lineageStageName(span.stage) << "\", \"t_s\": "
           << lineageNumber(span.t_s) << "}\n";
    }
}

double
FrameLineage::endToEndS() const
{
    return complete() ? at(LineageStage::Received) -
                            at(LineageStage::Captured)
                      : 0.0;
}

double
FrameLineage::dataAgeAtDownlinkS() const
{
    return stamped(LineageStage::Downlinked)
               ? at(LineageStage::Downlinked) - at(LineageStage::Captured)
               : 0.0;
}

double
FrameLineage::computeS() const
{
    return stamped(LineageStage::Decided)
               ? at(LineageStage::Decided) - at(LineageStage::Captured)
               : 0.0;
}

double
FrameLineage::contactWaitS() const
{
    if (!stamped(LineageStage::Contact) ||
        !stamped(LineageStage::Enqueued)) {
        return 0.0;
    }
    return std::max(0.0, at(LineageStage::Contact) -
                             at(LineageStage::Enqueued));
}

double
FrameLineage::queueWaitS() const
{
    if (!stamped(LineageStage::Downlinked) ||
        !stamped(LineageStage::Enqueued)) {
        return 0.0;
    }
    const double transmit_from =
        stamped(LineageStage::Contact)
            ? std::max(at(LineageStage::Enqueued),
                       at(LineageStage::Contact))
            : at(LineageStage::Enqueued);
    return std::max(0.0, at(LineageStage::Downlinked) - transmit_from);
}

std::vector<FrameLineage>
assembleLineage(const std::vector<LineageSpan> &spans)
{
    std::map<std::uint64_t, FrameLineage> by_frame;
    for (const LineageSpan &span : spans) {
        FrameLineage &frame = by_frame[span.frame_id];
        frame.frame_id = span.frame_id;
        const int stage = static_cast<int>(span.stage);
        frame.t[stage] = span.t_s;
        frame.has[stage] = true;
    }
    std::vector<FrameLineage> frames;
    frames.reserve(by_frame.size());
    for (const auto &[id, frame] : by_frame) {
        frames.push_back(frame);
    }
    return frames;
}

std::string
LineageStats::dominantStage() const
{
    if (downlinked <= 0) {
        return "none";
    }
    std::string name = "compute";
    double best = mean_compute_s;
    if (mean_contact_wait_s > best) {
        best = mean_contact_wait_s;
        name = "contact-wait";
    }
    if (mean_queue_wait_s > best) {
        name = "queue-wait";
    }
    return name;
}

LineageStats
summarizeLineage(const std::vector<FrameLineage> &frames)
{
    LineageStats stats;
    stats.frames = static_cast<std::int64_t>(frames.size());
    double sum_e2e = 0.0;
    double sum_age = 0.0;
    double sum_compute = 0.0;
    double sum_contact = 0.0;
    double sum_queue = 0.0;
    for (const FrameLineage &frame : frames) {
        if (!frame.stamped(LineageStage::Downlinked)) {
            continue;
        }
        ++stats.downlinked;
        const double e2e = frame.complete() ? frame.endToEndS()
                                            : frame.dataAgeAtDownlinkS();
        sum_e2e += e2e;
        stats.max_end_to_end_s = std::max(stats.max_end_to_end_s, e2e);
        sum_age += frame.dataAgeAtDownlinkS();
        sum_compute += frame.computeS();
        sum_contact += frame.contactWaitS();
        sum_queue += frame.queueWaitS();
    }
    if (stats.downlinked > 0) {
        const double n = static_cast<double>(stats.downlinked);
        stats.mean_end_to_end_s = sum_e2e / n;
        stats.mean_data_age_s = sum_age / n;
        stats.mean_compute_s = sum_compute / n;
        stats.mean_contact_wait_s = sum_contact / n;
        stats.mean_queue_wait_s = sum_queue / n;
    }
    return stats;
}

} // namespace kodan::telemetry
