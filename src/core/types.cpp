#include "core/types.hpp"

namespace kodan::core {

ml::MlpConfig
Application::surrogateConfig() const
{
    ml::MlpConfig config;
    config.input_dim = data::kBlockInputDim;
    config.hidden = hw::CostModel::tierHidden(tier);
    config.output_dim = 1;
    config.output = ml::OutputKind::Sigmoid;
    return config;
}

std::vector<Application>
Application::all()
{
    std::vector<Application> apps;
    for (int tier = 1; tier <= hw::kAppCount; ++tier) {
        apps.push_back({tier});
    }
    return apps;
}

const char *
actionKindName(ActionKind kind)
{
    switch (kind) {
      case ActionKind::Discard:
        return "discard";
      case ActionKind::Downlink:
        return "downlink";
      case ActionKind::RunModel:
        return "model";
    }
    return "?";
}

} // namespace kodan::core
