/**
 * @file
 * The deployed runtime (paper Fig. 7, right): per-frame execution of the
 * selection logic on a satellite.
 *
 * Each frame is tiled per the logic; the context engine labels each
 * tile; tiles are then discarded, queued raw for downlink, or filtered
 * by the chosen specialized model. Compute time is charged from the
 * hardware cost model. The runtime is the ground-truth implementation
 * the analytic projection (evaluateLogic) is validated against.
 */

#ifndef KODAN_CORE_RUNTIME_HPP
#define KODAN_CORE_RUNTIME_HPP

#include <vector>

#include "core/engine.hpp"
#include "core/selection.hpp"
#include "core/specialize.hpp"
#include "data/sample.hpp"
#include "hw/target.hpp"
#include "ml/confusion.hpp"

namespace kodan::core {

/** Outcome of processing one frame on board. */
struct FrameReport
{
    /** Modeled on-board compute time (s), engine + models. */
    double compute_time = 0.0;
    /** Product bits emitted, as a fraction of the raw frame bits. */
    double product_fraction = 0.0;
    /** Truly high-value product bits, as a fraction of raw frame bits. */
    double product_high_fraction = 0.0;
    /** Tiles elided to Discard. */
    int tiles_discarded = 0;
    /** Tiles elided to Downlink. */
    int tiles_downlinked = 0;
    /** Tiles filtered by a model. */
    int tiles_modeled = 0;
    /** Cell-level confusion of the frame's keep/drop decisions. */
    ml::ConfusionStats cells;
};

/**
 * Executes a selection logic on frames.
 */
class Runtime
{
  public:
    /**
     * @param logic Deployed policy.
     * @param engine Context engine (not owned).
     * @param zoo Model zoo (not owned).
     * @param target Hardware the compute time is charged against.
     */
    Runtime(const SelectionLogic &logic, const ContextEngine *engine,
            const SpecializedZoo *zoo, hw::Target target);

    /** The deployed policy. */
    const SelectionLogic &logic() const { return logic_; }

    /** Process one captured frame. */
    FrameReport processFrame(const data::FrameSample &frame) const;

    /** Aggregate reports over a frame set (mean time, summed counts). */
    static FrameReport aggregate(const std::vector<FrameReport> &reports);

  private:
    SelectionLogic logic_;
    const ContextEngine *engine_;
    const SpecializedZoo *zoo_;
    hw::Target target_;
};

} // namespace kodan::core

#endif // KODAN_CORE_RUNTIME_HPP
