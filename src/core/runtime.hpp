/**
 * @file
 * The deployed runtime (paper Fig. 7, right): per-frame execution of the
 * selection logic on a satellite.
 *
 * Each frame is tiled per the logic; the context engine labels each
 * tile; tiles are then discarded, queued raw for downlink, or filtered
 * by the chosen specialized model. Compute time is charged from the
 * hardware cost model. The runtime is the ground-truth implementation
 * the analytic projection (evaluateLogic) is validated against.
 */

#ifndef KODAN_CORE_RUNTIME_HPP
#define KODAN_CORE_RUNTIME_HPP

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/selection.hpp"
#include "core/specialize.hpp"
#include "data/sample.hpp"
#include "hw/target.hpp"
#include "ml/confusion.hpp"

namespace kodan::core {

/** Outcome of processing one frame on board. */
struct FrameReport
{
    /** Modeled on-board compute time (s), engine + models. */
    double compute_time = 0.0;
    /** Product bits emitted, as a fraction of the raw frame bits. */
    double product_fraction = 0.0;
    /** Truly high-value product bits, as a fraction of raw frame bits. */
    double product_high_fraction = 0.0;
    /** Tiles elided to Discard (64-bit: aggregates span whole missions,
     *  and 121 tiles/frame overflows int within ~18M frames). */
    std::int64_t tiles_discarded = 0;
    /** Tiles elided to Downlink. */
    std::int64_t tiles_downlinked = 0;
    /** Tiles filtered by a model. */
    std::int64_t tiles_modeled = 0;
    /** Cell-level confusion of the frame's keep/drop decisions. */
    ml::ConfusionStats cells;
};

/**
 * Reusable per-frame working state shared by the batch path
 * (Runtime::processFrame) and the staged pipeline data plane
 * (src/pipeline/): every buffer a frame needs on its way through the
 * stages. Capacities persist across frames, so a recycled FrameWork
 * re-processes a new frame without heap allocation in steady state —
 * the arena-resident frame slots of the pipeline are FrameWork
 * instances recycled through a freelist ring.
 */
struct FrameWork
{
    /** The frame being processed (non-owning). */
    const data::FrameSample *frame = nullptr;
    /** Decimated tiles (filled by stageTileClassify). */
    std::vector<data::TileData> tiles;
    /** Context id per tile (filled by stageTileClassify). */
    std::vector<int> contexts;
    /**
     * Keep/drop decision per (tile, block): tiles.size() *
     * data::kBlocksPerTile entries, tile-major (filled by
     * stageInferTile / the pipeline's burst infer stage for modeled
     * tiles; entries of elided tiles are unused).
     */
    std::vector<std::uint8_t> keep;
    /** The frame's finished report (filled by stageElide). */
    FrameReport report;
};

/**
 * Executes a selection logic on frames.
 *
 * The per-frame work is factored into stage entry points
 * (stageTileClassify -> stageInferTile -> stageElide -> stageRecord)
 * so the staged pipeline data plane (pipeline::PipelineRuntime) runs
 * the exact same implementation — and therefore produces bit-identical
 * FrameReport, journal, and metric output — while scheduling the
 * stages differently (rings, bursts, cross-frame batched inference).
 */
class Runtime
{
  public:
    /**
     * @param logic Deployed policy.
     * @param engine Context engine (not owned).
     * @param zoo Model zoo (not owned).
     * @param target Hardware the compute time is charged against.
     */
    Runtime(const SelectionLogic &logic, const ContextEngine *engine,
            const SpecializedZoo *zoo, hw::Target target);

    /** The deployed policy. */
    const SelectionLogic &logic() const { return logic_; }

    /** The model zoo the runtime executes (not owned). */
    const SpecializedZoo &zoo() const { return *zoo_; }

    /** Process one captured frame. */
    FrameReport processFrame(const data::FrameSample &frame) const;

    /**
     * Process a batch of frames, fanning the independent per-frame work
     * across the global thread pool (KODAN_THREADS), and return the
     * aggregate. Per-frame reports are merged in frame order, so the
     * result is bit-identical to aggregating serial processFrame() calls
     * for any thread count.
     */
    FrameReport processFrames(
        const std::vector<data::FrameSample> &frames) const;

    /**
     * Aggregate PER-FRAME reports over a frame set (mean time/fractions,
     * summed counts). Do not feed aggregates back into this function —
     * that averages means over unequal chunks; use mergeAggregates().
     */
    static FrameReport aggregate(const std::vector<FrameReport> &reports);

    /**
     * Merge two aggregates produced by aggregate() over @p frames_a and
     * @p frames_b frames respectively, weighting the per-frame means by
     * their frame counts (the mean-of-means-safe chunk merge).
     */
    static FrameReport mergeAggregates(const FrameReport &a,
                                       std::size_t frames_a,
                                       const FrameReport &b,
                                       std::size_t frames_b);

    /* -- Stage entry points (shared with pipeline::PipelineRuntime) -- */

    /**
     * Stage 1, capture -> tile/classify: tile @p frame (reusing
     * @p work's buffers) and label every tile's context with one
     * batched engine forward pass.
     */
    void stageTileClassify(const data::FrameSample &frame,
                           FrameWork &work) const;

    /**
     * Lazy variant of stageTileClassify: computes tile statistics and
     * context ids but skips block decimation (classification reads
     * only the tile-level mean/stddev), leaving each tile's block
     * arrays empty. The infer stage decimates exactly the modeled
     * tiles on demand (data::Tiler::decimate); elided tiles never pay
     * the decimation pass. Downstream output is bit-identical: the
     * elide and record stages read no block data, and on-demand
     * decimation runs the same code as the eager path.
     */
    void stageTileClassifyLazy(const data::FrameSample &frame,
                               FrameWork &work) const;

    /**
     * Stage 2, specialize/infer (per-tile form): run modeled tile
     * @p t's specialized model over its block batch and write the
     * keep/drop decisions into work.keep. Only valid for tiles whose
     * action is RunModel. The pipeline's burst form batches the rows
     * of many tiles (grouped by model) through one forwardBatch call
     * instead — bit-identical, since rows are independent.
     */
    void stageInferTile(FrameWork &work, std::size_t t) const;

    /** Keep/drop rule shared by both infer forms: keep iff the model's
     *  cloud probability is below 0.5. */
    static void keepFromProbs(const double *probs, std::size_t count,
                              std::uint8_t *keep);

    /**
     * Stage 3, elide: the per-tile accounting loop — compute time,
     * elision verdicts, product fractions, cell confusion — writing
     * work.report. Reads work.keep for modeled tiles; accumulation
     * order is fixed (tile order, engine then model time), so the
     * report is bit-identical however the keep decisions were batched.
     */
    void stageElide(FrameWork &work) const;

    /**
     * Stage 4, downlink-queue/record: emit the frame's telemetry
     * (counters, gauges, histogram, sim-time series) and flight
     * recorder events. Derived purely from the finished report; no-op
     * when recording is disabled.
     */
    void stageRecord(const FrameWork &work) const;

  private:
    SelectionLogic logic_;
    const ContextEngine *engine_;
    const SpecializedZoo *zoo_;
    hw::Target target_;
};

} // namespace kodan::core

#endif // KODAN_CORE_RUNTIME_HPP
