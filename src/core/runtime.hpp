/**
 * @file
 * The deployed runtime (paper Fig. 7, right): per-frame execution of the
 * selection logic on a satellite.
 *
 * Each frame is tiled per the logic; the context engine labels each
 * tile; tiles are then discarded, queued raw for downlink, or filtered
 * by the chosen specialized model. Compute time is charged from the
 * hardware cost model. The runtime is the ground-truth implementation
 * the analytic projection (evaluateLogic) is validated against.
 */

#ifndef KODAN_CORE_RUNTIME_HPP
#define KODAN_CORE_RUNTIME_HPP

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/selection.hpp"
#include "core/specialize.hpp"
#include "data/sample.hpp"
#include "hw/target.hpp"
#include "ml/confusion.hpp"

namespace kodan::core {

/** Outcome of processing one frame on board. */
struct FrameReport
{
    /** Modeled on-board compute time (s), engine + models. */
    double compute_time = 0.0;
    /** Product bits emitted, as a fraction of the raw frame bits. */
    double product_fraction = 0.0;
    /** Truly high-value product bits, as a fraction of raw frame bits. */
    double product_high_fraction = 0.0;
    /** Tiles elided to Discard (64-bit: aggregates span whole missions,
     *  and 121 tiles/frame overflows int within ~18M frames). */
    std::int64_t tiles_discarded = 0;
    /** Tiles elided to Downlink. */
    std::int64_t tiles_downlinked = 0;
    /** Tiles filtered by a model. */
    std::int64_t tiles_modeled = 0;
    /** Cell-level confusion of the frame's keep/drop decisions. */
    ml::ConfusionStats cells;
};

/**
 * Executes a selection logic on frames.
 */
class Runtime
{
  public:
    /**
     * @param logic Deployed policy.
     * @param engine Context engine (not owned).
     * @param zoo Model zoo (not owned).
     * @param target Hardware the compute time is charged against.
     */
    Runtime(const SelectionLogic &logic, const ContextEngine *engine,
            const SpecializedZoo *zoo, hw::Target target);

    /** The deployed policy. */
    const SelectionLogic &logic() const { return logic_; }

    /** Process one captured frame. */
    FrameReport processFrame(const data::FrameSample &frame) const;

    /**
     * Process a batch of frames, fanning the independent per-frame work
     * across the global thread pool (KODAN_THREADS), and return the
     * aggregate. Per-frame reports are merged in frame order, so the
     * result is bit-identical to aggregating serial processFrame() calls
     * for any thread count.
     */
    FrameReport processFrames(
        const std::vector<data::FrameSample> &frames) const;

    /**
     * Aggregate PER-FRAME reports over a frame set (mean time/fractions,
     * summed counts). Do not feed aggregates back into this function —
     * that averages means over unequal chunks; use mergeAggregates().
     */
    static FrameReport aggregate(const std::vector<FrameReport> &reports);

    /**
     * Merge two aggregates produced by aggregate() over @p frames_a and
     * @p frames_b frames respectively, weighting the per-frame means by
     * their frame counts (the mean-of-means-safe chunk merge).
     */
    static FrameReport mergeAggregates(const FrameReport &a,
                                       std::size_t frames_a,
                                       const FrameReport &b,
                                       std::size_t frames_b);

  private:
    SelectionLogic logic_;
    const ContextEngine *engine_;
    const SpecializedZoo *zoo_;
    hw::Target target_;
};

} // namespace kodan::core

#endif // KODAN_CORE_RUNTIME_HPP
