#include "core/selection.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::core {

SelectionOptimizer::SelectionOptimizer(const SweepOptions &options)
    : options_(options)
{
    assert(!options_.tile_counts.empty());
}

namespace {

/**
 * Preference order of the sweep. Under a saturated downlink, maximizing
 * DVD and maximizing high-value bits coincide; when candidate policies
 * undersaturate the link, high-value volume must dominate — otherwise
 * the sweep degenerates to "discard everything but a pure trickle".
 * Near-ties (within 0.5% of value) break toward shorter frame time, so
 * the logic prefers meeting the soft frame deadline when the marginal
 * value of exceeding it is negligible (paper Section 3.4).
 */
bool
betterOutcome(const DeploymentOutcome &a, const DeploymentOutcome &b)
{
    const double scale = std::max(a.high_bits_sent, b.high_bits_sent);
    if (std::fabs(a.high_bits_sent - b.high_bits_sent) > 0.005 * scale) {
        return a.high_bits_sent > b.high_bits_sent;
    }
    if (a.frame_time != b.frame_time) {
        return a.frame_time < b.frame_time;
    }
    return a.dvd > b.dvd;
}

} // namespace

std::vector<int>
SelectionOptimizer::allowedCandidates(const ContextActionTable &table,
                                      int context) const
{
    std::vector<int> allowed;
    for (std::size_t i = 0; i < table.actions[context].size(); ++i) {
        const Action &action = table.actions[context][i];
        if (action.kind != ActionKind::RunModel &&
            !options_.allow_elision) {
            continue;
        }
        if (action.kind == ActionKind::RunModel &&
            !options_.allow_specialization && action.model != 0) {
            // Entry 0 is the global reference model by construction.
            continue;
        }
        allowed.push_back(static_cast<int>(i));
    }
    assert(!allowed.empty());
    return allowed;
}

std::pair<std::vector<Action>, DeploymentOutcome>
SelectionOptimizer::optimizeAtTiling(const SystemProfile &profile,
                                     const ContextActionTable &table) const
{
    KODAN_TRACE_SPAN("selection.tiling.optimize");
    std::int64_t evaluated = 0; // evaluateLogic calls in this sweep
    const int contexts = table.contextCount();
    std::vector<std::vector<int>> allowed(contexts);
    std::size_t combos = 1;
    bool overflow = false;
    for (int c = 0; c < contexts; ++c) {
        allowed[c] = allowedCandidates(table, c);
        if (combos > options_.max_enumeration / allowed[c].size()) {
            overflow = true;
        }
        combos *= allowed[c].size();
    }

    // One actions buffer reused across the whole enumeration — the
    // assemble/measure pair runs for every combination, so a per-call
    // vector allocation here dominated the sweep's allocator traffic.
    std::vector<Action> actions(contexts);
    auto assemble = [&](const std::vector<std::size_t> &choice) {
        for (int c = 0; c < contexts; ++c) {
            actions[c] = table.actions[c][allowed[c][choice[c]]];
        }
    };
    auto measure = [&]() {
        ++evaluated;
        return evaluateLogic(profile, table, actions, true,
                             options_.send_unprocessed_raw);
    };

    std::vector<std::size_t> choice(contexts, 0);
    assemble(choice);
    std::vector<Action> best_actions = actions;
    DeploymentOutcome best_outcome = measure();

    if (!overflow) {
        // Exhaustive odometer over all combinations.
        while (true) {
            int pos = contexts - 1;
            while (pos >= 0) {
                if (++choice[pos] < allowed[pos].size()) {
                    break;
                }
                choice[pos] = 0;
                --pos;
            }
            if (pos < 0) {
                break;
            }
            assemble(choice);
            const auto outcome = measure();
            if (betterOutcome(outcome, best_outcome)) {
                best_outcome = outcome;
                best_actions = actions;
            }
        }
        KODAN_COUNT_ADD("selection.candidates.evaluated", evaluated);
        return {best_actions, best_outcome};
    }

    // Coordinate ascent fallback for very large candidate spaces.
    std::vector<std::size_t> current(contexts, 0);
    bool improved = true;
    assemble(current);
    best_actions = actions;
    best_outcome = measure();
    while (improved) {
        improved = false;
        for (int c = 0; c < contexts; ++c) {
            std::size_t best_cand = current[c];
            for (std::size_t cand = 0; cand < allowed[c].size(); ++cand) {
                if (cand == best_cand) {
                    continue;
                }
                current[c] = cand;
                assemble(current);
                const auto outcome = measure();
                if (betterOutcome(outcome, best_outcome)) {
                    best_outcome = outcome;
                    best_actions = actions;
                    best_cand = cand;
                    improved = true;
                }
            }
            current[c] = best_cand;
        }
    }
    KODAN_COUNT_ADD("selection.candidates.evaluated", evaluated);
    return {best_actions, best_outcome};
}

SweepResult
SelectionOptimizer::optimize(
    const SystemProfile &profile,
    const std::vector<ContextActionTable> &tables) const
{
    assert(!tables.empty());
    KODAN_TRACE_SCOPE("selection.sweep.optimize");
    KODAN_COUNT_ADD("selection.tilings.swept", tables.size());
    // Flight recorder: the sweep is one journal region; tiling i records
    // its candidate outcome into slot i + 1 and the winner lands on the
    // region's own lane, deterministically for any KODAN_THREADS.
    telemetry::JournalRegion journal_region("selection.sweep");
    // Each tiling's candidate optimization is independent; the winner is
    // picked serially in table order afterwards, so the selected logic
    // is bit-identical to the serial sweep for any thread count.
    std::vector<std::pair<std::vector<Action>, DeploymentOutcome>>
        per_table(tables.size());
    util::parallelFor(tables.size(), [&](std::size_t i) {
        telemetry::JournalScope journal_scope(journal_region.id(), i);
        per_table[i] = optimizeAtTiling(profile, tables[i]);
        if (telemetry::journalEnabled()) {
            telemetry::JournalEventBuilder("selection.tiling.result")
                .i64("tiles_per_side", tables[i].tiles_per_side)
                .f64("dvd", per_table[i].second.dvd)
                .f64("high_bits_sent", per_table[i].second.high_bits_sent)
                .f64("frame_time_s", per_table[i].second.frame_time);
        }
    });

    SweepResult result;
    bool first = true;
    for (std::size_t i = 0; i < tables.size(); ++i) {
        auto &[actions, outcome] = per_table[i];
        result.per_tiling.emplace_back(
            tables[i].tiles_per_side * tables[i].tiles_per_side, outcome);
        if (first || betterOutcome(outcome, result.outcome)) {
            first = false;
            result.logic.tiles_per_side = tables[i].tiles_per_side;
            result.logic.per_context = std::move(actions);
            result.outcome = outcome;
        }
    }
    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("selection.sweep.selected")
            .i64("tiles_per_side", result.logic.tiles_per_side)
            .f64("dvd", result.outcome.dvd)
            .f64("high_bits_sent", result.outcome.high_bits_sent)
            .f64("frame_time_s", result.outcome.frame_time);
    }
    return result;
}

} // namespace kodan::core
