#include "core/transformer.hpp"

#include <cassert>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::core {

const ContextActionTable &
AppArtifacts::directTable() const
{
    for (const auto &table : direct_tables) {
        if (table.tiles_per_side * table.tiles_per_side ==
            direct_tiles_per_frame) {
            return table;
        }
    }
    assert(!direct_tables.empty());
    return direct_tables.front();
}

Transformer::Transformer(const TransformOptions &options)
    : options_(options)
{
    assert(options_.train_frames >= 1);
    assert(options_.val_frames >= 1);
    assert(options_.reference_tiling >= 1);
}

DataArtifacts
Transformer::prepareData(const data::GeoModel &geo) const
{
    data::DatasetParams params;
    params.seed = util::splitMix64(options_.seed ^ 0xDA7A);
    data::DatasetGenerator generator(geo, params);
    auto frames = generator.generateGlobal(options_.train_frames +
                                           options_.val_frames);
    std::vector<data::FrameSample> train(
        std::make_move_iterator(frames.begin()),
        std::make_move_iterator(frames.begin() + options_.train_frames));
    std::vector<data::FrameSample> val(
        std::make_move_iterator(frames.begin() + options_.train_frames),
        std::make_move_iterator(frames.end()));
    return prepareData(std::move(train), std::move(val));
}

DataArtifacts
Transformer::prepareData(std::vector<data::FrameSample> train,
                         std::vector<data::FrameSample> val) const
{
    assert(!train.empty() && !val.empty());
    KODAN_TRACE_SCOPE("transformer.data.prepare");
    DataArtifacts shared;
    shared.train = std::move(train);
    shared.val = std::move(val);
    KODAN_COUNT_ADD("transformer.frames.prepared",
                    shared.train.size() + shared.val.size());

    util::Rng rng(util::splitMix64(options_.seed ^ 0x5EED));

    // Tile the training frames at the reference tiling.
    const data::Tiler tiler(options_.reference_tiling);
    {
        KODAN_TRACE_SPAN("transformer.frames.tile");
        for (const auto &frame : shared.train) {
            auto tiles = tiler.tile(frame);
            shared.train_tiles.insert(
                shared.train_tiles.end(),
                std::make_move_iterator(tiles.begin()),
                std::make_move_iterator(tiles.end()));
        }
    }

    // Legacy corpus: the out-of-domain world the reference applications
    // were originally built for.
    if (options_.legacy_reference) {
        const data::GeoModel legacy_world(
            data::GeoModelParams::legacyDomain());
        data::DatasetParams legacy_params;
        legacy_params.seed = util::splitMix64(options_.seed ^ 0x1E6AC);
        if (!shared.train.empty()) {
            legacy_params.grid = shared.train.front().grid;
            legacy_params.frame_size_m = shared.train.front().size_m;
        }
        data::DatasetGenerator legacy_gen(legacy_world, legacy_params);
        shared.legacy = legacy_gen.generateGlobal(options_.legacy_frames);
        for (const auto &frame : shared.legacy) {
            auto tiles = tiler.tile(frame);
            shared.legacy_tiles.insert(
                shared.legacy_tiles.end(),
                std::make_move_iterator(tiles.begin()),
                std::make_move_iterator(tiles.end()));
        }
    }

    // Contexts: automatic clustering (or expert terrain partition).
    {
        KODAN_TRACE_SPAN("transformer.contexts.fit");
        const ContextPartitioner partitioner(options_.partition);
        shared.partition =
            options_.expert_contexts
                ? partitioner.fitExpert(shared.train_tiles)
                : partitioner.fitAuto(shared.train_tiles, rng);
    }
    KODAN_COUNT_ADD("transformer.contexts.fitted",
                    shared.partition.context_count);

    // Context engine, trained to imitate the partition from features.
    {
        KODAN_TRACE_SPAN("transformer.engine.train");
        shared.engine = std::make_unique<ContextEngine>(
            shared.train_tiles, shared.partition, rng);
    }

    // The deployed engine's labels are downstream ground truth.
    shared.train_contexts.reserve(shared.train_tiles.size());
    for (const auto &tile : shared.train_tiles) {
        shared.train_contexts.push_back(shared.engine->classify(tile));
    }
    shared.contexts =
        summarizeContexts(shared.train_tiles, shared.train_contexts,
                          shared.partition.context_count);

    // Validation diagnostics.
    std::vector<data::TileData> val_tiles;
    for (const auto &frame : shared.val) {
        auto tiles = tiler.tile(frame);
        val_tiles.insert(val_tiles.end(),
                         std::make_move_iterator(tiles.begin()),
                         std::make_move_iterator(tiles.end()));
    }
    shared.engine_agreement =
        shared.engine->agreement(val_tiles, shared.partition);
    double high = 0.0;
    double cells = 0.0;
    for (const auto &frame : shared.val) {
        high += frame.highValueFraction() *
                static_cast<double>(frame.cellCount());
        cells += static_cast<double>(frame.cellCount());
    }
    shared.prevalence = cells > 0.0 ? high / cells : 0.0;
    return shared;
}

AppArtifacts
Transformer::transformApp(const Application &app,
                          const DataArtifacts &shared) const
{
    assert(shared.engine != nullptr);
    KODAN_TRACE_SCOPE("transformer.app.transform");
    AppArtifacts artifacts;
    artifacts.app = app;

    util::Rng rng(util::splitMix64(options_.seed ^
                                   (0xA4B0 + static_cast<std::uint64_t>(
                                                 app.tier))));

    {
        KODAN_TRACE_SPAN("transformer.zoo.train");
        const ModelSpecializer specializer(app, options_.specialize);
        artifacts.zoo = specializer.trainZoo(
            shared.train_tiles, shared.train_contexts,
            shared.partition.context_count, rng,
            shared.legacy_tiles.empty() ? nullptr
                                        : &shared.legacy_tiles);
    }
    KODAN_COUNT_ADD("transformer.models.trained",
                    artifacts.zoo.entries.size());

    const DeploymentEvaluator evaluator(&artifacts.zoo,
                                        shared.engine.get());

    // Tolerance gate on the int8 siblings: every quantized candidate is
    // A/B-measured against its fp64 twin on the validation tiles at the
    // reference tiling; siblings whose cell accuracy or high-value
    // fraction degrade beyond the configured tolerances are rejected
    // (the entry then runs fp64 even under KODAN_QUANT=int8), so the
    // sweep never selects a quantized model that trades away value.
    if (options_.specialize.quantize) {
        KODAN_TRACE_SPAN("transformer.quant.validate");
        const data::Tiler tiler(options_.reference_tiling);
        std::vector<data::TileData> val_tiles;
        for (const auto &frame : shared.val) {
            auto tiles = tiler.tile(frame);
            val_tiles.insert(val_tiles.end(),
                             std::make_move_iterator(tiles.begin()),
                             std::make_move_iterator(tiles.end()));
        }
        // Deterministic stride subsample: the gate needs a stable
        // accuracy estimate, not the full sweep-grade measurement.
        const std::size_t cap = options_.specialize.quant_gate_max_tiles;
        const std::size_t stride =
            (cap > 0 && val_tiles.size() > cap)
                ? (val_tiles.size() + cap - 1) / cap
                : 1;
        std::vector<const data::TileData *> tile_ptrs;
        tile_ptrs.reserve(val_tiles.size() / stride + 1);
        for (std::size_t t = 0; t < val_tiles.size(); t += stride) {
            tile_ptrs.push_back(&val_tiles[t]);
        }
        std::int64_t rejected = 0;
        for (std::size_t e = 0; e < artifacts.zoo.entries.size(); ++e) {
            if (artifacts.zoo.entries[e].quant == nullptr) {
                continue;
            }
            ActionStats fp_stats;
            ActionStats q_stats;
            {
                const ml::PrecisionGuard guard(ml::Precision::Fp64);
                fp_stats = evaluator.measureModelOnTiles(
                    static_cast<int>(e), tile_ptrs);
            }
            {
                const ml::PrecisionGuard guard(ml::Precision::Int8);
                q_stats = evaluator.measureModelOnTiles(
                    static_cast<int>(e), tile_ptrs);
            }
            const double accuracy_drop =
                fp_stats.cell_accuracy - q_stats.cell_accuracy;
            const double value_drop =
                fp_stats.high_fraction - q_stats.high_fraction;
            if (accuracy_drop >
                    options_.specialize.quant_max_accuracy_drop ||
                value_drop > options_.specialize.quant_max_value_drop) {
                artifacts.zoo.entries[e].quant.reset();
                ++rejected;
            }
        }
        KODAN_COUNT_ADD("transformer.quant.rejected", rejected);
        KODAN_COUNT_ADD(
            "transformer.quant.accepted",
            static_cast<std::int64_t>(artifacts.zoo.entries.size()) -
                rejected);
    }

    // Candidate sweep: each tiling's validation pass is independent, so
    // the tilings run in parallel; results land at their sweep index, so
    // table order (and everything downstream) is thread-count invariant.
    const auto &tile_counts = options_.sweep.tile_counts;
    artifacts.tables.resize(tile_counts.size());
    artifacts.direct_tables.resize(tile_counts.size());
    util::parallelFor(tile_counts.size(), [&](std::size_t i) {
        KODAN_TRACE_SPAN("transformer.table.measure");
        const int side =
            static_cast<int>(std::lround(std::sqrt(tile_counts[i])));
        artifacts.tables[i] = evaluator.measureTable(shared.val, side);
        artifacts.direct_tables[i] =
            evaluator.measureDirectTable(shared.val, side);
        KODAN_COUNT_ADD("transformer.tables.measured", 2);
    });

    // Direct deployment uses the accuracy-maximal tiling (prior work).
    double best_accuracy = -1.0;
    for (const auto &table : artifacts.direct_tables) {
        const double accuracy = table.stats[0][0].cell_accuracy;
        if (accuracy > best_accuracy) {
            best_accuracy = accuracy;
            artifacts.direct_tiles_per_frame =
                table.tiles_per_side * table.tiles_per_side;
        }
    }
    return artifacts;
}

SweepResult
Transformer::select(const AppArtifacts &artifacts,
                    const SystemProfile &profile) const
{
    KODAN_TRACE_SPAN("transformer.logic.select");
    const SelectionOptimizer optimizer(options_.sweep);
    return optimizer.optimize(profile, artifacts.tables);
}

DeploymentPackage
Transformer::makeDeployment(const DataArtifacts &shared,
                            const AppArtifacts &artifacts,
                            const SystemProfile &profile) const
{
    assert(shared.engine != nullptr);
    SweepResult result = select(artifacts, profile);
    return DeploymentPackage{std::move(result.logic), *shared.engine,
                             artifacts.zoo, profile.target};
}

DeploymentOutcome
Transformer::directDeploy(const AppArtifacts &artifacts,
                          const SystemProfile &profile)
{
    const ContextActionTable &table = artifacts.directTable();
    const std::vector<Action> actions = {
        {ActionKind::RunModel, artifacts.zoo.reference}};
    return evaluateLogic(profile, table, actions,
                         /*use_context_engine=*/false,
                         /*send_unprocessed_raw=*/true);
}

} // namespace kodan::core
