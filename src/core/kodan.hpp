/**
 * @file
 * Umbrella header of the Kodan library.
 *
 * Typical usage (see examples/quickstart.cpp):
 * @code
 *   kodan::data::GeoModel world;                       // synthetic Earth
 *   kodan::core::Transformer transformer;              // one-time step
 *   auto shared = transformer.prepareData(world);      // contexts+engine
 *   kodan::core::Application app{4};                   // Table 1 tier 4
 *   auto artifacts = transformer.transformApp(app, shared);
 *   auto profile = kodan::core::SystemProfile::landsat8(
 *       kodan::hw::Target::Orin15W, shared.prevalence);
 *   auto result = transformer.select(artifacts, profile);
 *   // result.logic is the deployable policy; result.outcome.dvd is the
 *   // projected data value density of the saturated downlink.
 * @endcode
 */

#ifndef KODAN_CORE_KODAN_HPP
#define KODAN_CORE_KODAN_HPP

#include "core/engine.hpp"
#include "core/evaluate.hpp"
#include "core/partition.hpp"
#include "core/runtime.hpp"
#include "core/selection.hpp"
#include "core/specialize.hpp"
#include "core/transformer.hpp"
#include "core/types.hpp"

#endif // KODAN_CORE_KODAN_HPP
