/**
 * @file
 * Serialization of measured evaluation artifacts.
 *
 * The one-time transformation step is the expensive part of every
 * experiment (dataset synthesis, clustering, zoo training, table
 * measurement). Its *measured outputs* — the per-tiling action tables —
 * are all the figure benches need, and they are target-independent, so
 * they are cached to disk in a plain text format. The trained networks
 * themselves serialize via ml::Mlp::save/load.
 */

#ifndef KODAN_CORE_IO_HPP
#define KODAN_CORE_IO_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/selection.hpp"
#include "core/types.hpp"
#include "hw/target.hpp"

namespace kodan::core {

/** Serialize a measured table (text, line-oriented). */
void saveTable(std::ostream &os, const ContextActionTable &table);

/** Deserialize a table written by saveTable(). Fatal on malformed input. */
ContextActionTable loadTable(std::istream &is);

/**
 * The measured (network-free) part of an application's artifacts: all
 * tables plus the direct-deploy tiling decision.
 */
struct MeasuredApp
{
    /** Application tier. */
    int tier = 1;
    /** Kodan candidate tables per tiling. */
    std::vector<ContextActionTable> tables;
    /** Direct-deploy tables per tiling. */
    std::vector<ContextActionTable> direct_tables;
    /** Accuracy-maximal tiling (tiles per frame). */
    int direct_tiles_per_frame = 36;
};

/** Measured bundle for a whole experiment run. */
struct MeasuredBundle
{
    /** Format version tag; bump when the pipeline changes. */
    int version = 1;
    /** High-value prevalence of the validation set. */
    double prevalence = 0.48;
    /** Per-application measurements. */
    std::vector<MeasuredApp> apps;
};

/** Serialize a bundle. */
void saveBundle(std::ostream &os, const MeasuredBundle &bundle);

/** Deserialize a bundle written by saveBundle(). */
MeasuredBundle loadBundle(std::istream &is);

/**
 * Load a bundle from @p path; returns false when the file is absent.
 * @param path File path.
 * @param bundle Output.
 */
bool tryLoadBundle(const std::string &path, MeasuredBundle &bundle);

/** Write a bundle to @p path (best-effort; logs on failure). */
void storeBundle(const std::string &path, const MeasuredBundle &bundle);

/** Serialize a selection logic. */
void saveLogic(std::ostream &os, const SelectionLogic &logic);

/** Deserialize a selection logic written by saveLogic(). */
SelectionLogic loadLogic(std::istream &is);

/** Serialize a trained zoo (scaler + every network). */
void saveZoo(std::ostream &os, const SpecializedZoo &zoo);

/** Deserialize a zoo written by saveZoo(). */
SpecializedZoo loadZoo(std::istream &is);

/**
 * Everything a satellite needs on orbit: the context engine, the model
 * zoo, the selection logic, and the hardware target the logic was swept
 * for. This is the artifact the one-time transformation step "uplinks".
 */
struct DeploymentPackage
{
    /** Deployed policy. */
    SelectionLogic logic;
    /** Trained context engine. */
    ContextEngine engine;
    /** Trained model zoo. */
    SpecializedZoo zoo;
    /** Target the logic was selected for. */
    hw::Target target = hw::Target::Orin15W;

    /** Serialize the whole package. */
    void save(std::ostream &os) const;

    /** Deserialize a package written by save(). */
    static DeploymentPackage load(std::istream &is);
};

} // namespace kodan::core

#endif // KODAN_CORE_IO_HPP
