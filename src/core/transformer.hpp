/**
 * @file
 * The one-time transformation step (paper Fig. 7, left): from a
 * representative dataset and a reference application to deployable
 * artifacts — contexts, a context engine, a specialized-model zoo,
 * measured action tables, and (per target system) a selection logic.
 *
 * The step is split in two stages so the expensive dataset-level work
 * (generation, clustering, engine training) is shared across the seven
 * applications:
 *   1. prepareData()  — dataset-level artifacts, application-independent;
 *   2. transformApp() — per-application zoo training and measurement.
 * select() then projects an application's artifacts onto a target system.
 */

#ifndef KODAN_CORE_TRANSFORMER_HPP
#define KODAN_CORE_TRANSFORMER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/evaluate.hpp"
#include "core/io.hpp"
#include "core/partition.hpp"
#include "core/selection.hpp"
#include "core/specialize.hpp"
#include "data/generator.hpp"

namespace kodan::core {

/** Knobs of the transformation step. */
struct TransformOptions
{
    /** Frames in the representative (training) split. */
    int train_frames = 120;
    /** Frames reserved for validation/measurement. */
    int val_frames = 40;
    /** Tiles per frame side at which models are trained. */
    int reference_tiling = 6;
    /** Use expert (terrain) contexts instead of automatic clustering. */
    bool expert_contexts = false;
    /**
     * Train reference applications on the legacy (out-of-domain) corpus,
     * modelling the paper's datacenter networks; specialized models
     * always train on the representative dataset.
     */
    bool legacy_reference = true;
    /** Frames in the legacy corpus (when legacy_reference is set). */
    int legacy_frames = 80;
    /** Context-generation sweep. */
    PartitionOptions partition{};
    /** Zoo training hyperparameters. */
    SpecializeOptions specialize{};
    /** Selection-logic sweep. */
    SweepOptions sweep{};
    /** Master seed of the whole step. */
    std::uint64_t seed = 20230325;
};

/**
 * Dataset-level artifacts shared by every application.
 *
 * Move-only (owns the trained context engine).
 */
struct DataArtifacts
{
    /** Training frames. */
    std::vector<data::FrameSample> train;
    /** Validation frames. */
    std::vector<data::FrameSample> val;
    /** Training tiles at the reference tiling. */
    std::vector<data::TileData> train_tiles;
    /** Legacy-domain frames (reference-model training corpus). */
    std::vector<data::FrameSample> legacy;
    /** Legacy-domain tiles at the reference tiling. */
    std::vector<data::TileData> legacy_tiles;
    /** Context partition of the training tiles. */
    Partition partition;
    /** Trained context engine. */
    std::unique_ptr<ContextEngine> engine;
    /** Engine context labels of the training tiles. */
    std::vector<int> train_contexts;
    /** Engine/partition agreement on validation tiles. */
    double engine_agreement = 0.0;
    /** High-value prevalence of the validation frames. */
    double prevalence = 0.0;
    /** Context summaries (engine assignment, reference tiling). */
    std::vector<ContextInfo> contexts;
};

/** Per-application artifacts. */
struct AppArtifacts
{
    /** The application. */
    Application app;
    /** Trained reference + specialized networks. */
    SpecializedZoo zoo;
    /** Kodan candidate tables, one per swept tiling. */
    std::vector<ContextActionTable> tables;
    /** Direct-deploy tables (reference model only), one per tiling. */
    std::vector<ContextActionTable> direct_tables;
    /** Accuracy-maximal tiling (tiles/frame) for direct deployment. */
    int direct_tiles_per_frame = 36;

    /** The direct-deploy table at the accuracy-maximal tiling. */
    const ContextActionTable &directTable() const;
};

/**
 * Runs the transformation step.
 */
class Transformer
{
  public:
    explicit Transformer(const TransformOptions &options = {});

    /** Options in effect. */
    const TransformOptions &options() const { return options_; }

    /**
     * Stage 1: generate the representative dataset from @p geo and build
     * the application-independent artifacts.
     */
    DataArtifacts prepareData(const data::GeoModel &geo) const;

    /**
     * Stage 1 with caller-provided frames (e.g. along-track sampling).
     *
     * @param train Training frames (moved in).
     * @param val Validation frames (moved in).
     */
    DataArtifacts prepareData(std::vector<data::FrameSample> train,
                              std::vector<data::FrameSample> val) const;

    /**
     * Stage 2: train and measure one application against the shared
     * artifacts.
     */
    AppArtifacts transformApp(const Application &app,
                              const DataArtifacts &shared) const;

    /**
     * Produce the selection logic and projected outcome for a target
     * system (the final column of the one-time step).
     */
    SweepResult select(const AppArtifacts &artifacts,
                       const SystemProfile &profile) const;

    /**
     * Direct-deploy baseline outcome: the reference model at its
     * accuracy-maximal tiling, no engine, no elision.
     */
    static DeploymentOutcome directDeploy(const AppArtifacts &artifacts,
                                          const SystemProfile &profile);

    /**
     * Assemble the uplinkable deployment package for a target system:
     * runs the selection sweep and bundles the logic with copies of the
     * engine and zoo (see core/io.hpp for serialization).
     */
    DeploymentPackage makeDeployment(const DataArtifacts &shared,
                                     const AppArtifacts &artifacts,
                                     const SystemProfile &profile) const;

  private:
    TransformOptions options_;
};

} // namespace kodan::core

#endif // KODAN_CORE_TRANSFORMER_HPP
