#include "core/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/log.hpp"

namespace kodan::core {

namespace {

/**
 * Version 2 adds the per-row quantized flag to tables (the int8
 * inference path) and per-entry activation scales to zoos. Stale
 * version-1 caches are regenerated via tryLoadBundle().
 */
constexpr int kBundleVersion = 2;

void
expectTag(std::istream &is, const std::string &expected)
{
    std::string tag;
    is >> tag;
    if (tag != expected) {
        util::fatal("kodan::core::io: expected '" + expected + "', got '" +
                    tag + "'");
    }
}

} // namespace

void
saveTable(std::ostream &os, const ContextActionTable &table)
{
    os << "table " << table.tiles_per_side << ' ' << table.contextCount()
       << '\n';
    os.precision(17);
    for (int c = 0; c < table.contextCount(); ++c) {
        const auto &info = table.contexts[c];
        os << "context " << info.id << ' ' << info.tile_share << ' '
           << info.prevalence << ' '
           << (info.description.empty() ? "-" : info.description) << ' '
           << table.actions[c].size() << '\n';
        for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
            const Action &action = table.actions[c][a];
            const ActionStats &stats = table.stats[c][a];
            os << static_cast<int>(action.kind) << ' ' << action.model
               << ' ' << stats.bits_fraction << ' ' << stats.high_fraction
               << ' ' << stats.cell_accuracy << ' ' << stats.model_params
               << ' ' << (stats.quantized ? 1 : 0) << '\n';
        }
    }
}

ContextActionTable
loadTable(std::istream &is)
{
    expectTag(is, "table");
    ContextActionTable table;
    int contexts = 0;
    is >> table.tiles_per_side >> contexts;
    if (!is || contexts < 0) {
        util::fatal("kodan::core::io: malformed table header");
    }
    table.contexts.resize(contexts);
    table.actions.resize(contexts);
    table.stats.resize(contexts);
    for (int c = 0; c < contexts; ++c) {
        expectTag(is, "context");
        std::size_t action_count = 0;
        auto &info = table.contexts[c];
        is >> info.id >> info.tile_share >> info.prevalence >>
            info.description >> action_count;
        if (info.description == "-") {
            info.description.clear();
        }
        for (std::size_t a = 0; a < action_count; ++a) {
            int kind = 0;
            Action action;
            ActionStats stats;
            int quantized = 0;
            is >> kind >> action.model >> stats.bits_fraction >>
                stats.high_fraction >> stats.cell_accuracy >>
                stats.model_params >> quantized;
            action.kind = static_cast<ActionKind>(kind);
            stats.quantized = quantized != 0;
            table.actions[c].push_back(action);
            table.stats[c].push_back(stats);
        }
    }
    if (!is) {
        util::fatal("kodan::core::io: truncated table");
    }
    return table;
}

void
saveBundle(std::ostream &os, const MeasuredBundle &bundle)
{
    os << "kodan-bundle " << kBundleVersion << '\n';
    os.precision(17);
    os << bundle.prevalence << ' ' << bundle.apps.size() << '\n';
    for (const auto &app : bundle.apps) {
        os << "app " << app.tier << ' ' << app.direct_tiles_per_frame
           << ' ' << app.tables.size() << ' ' << app.direct_tables.size()
           << '\n';
        for (const auto &table : app.tables) {
            saveTable(os, table);
        }
        for (const auto &table : app.direct_tables) {
            saveTable(os, table);
        }
    }
}

MeasuredBundle
loadBundle(std::istream &is)
{
    expectTag(is, "kodan-bundle");
    MeasuredBundle bundle;
    is >> bundle.version;
    if (bundle.version != kBundleVersion) {
        util::fatal("kodan::core::io: bundle version mismatch");
    }
    std::size_t app_count = 0;
    is >> bundle.prevalence >> app_count;
    for (std::size_t i = 0; i < app_count; ++i) {
        expectTag(is, "app");
        MeasuredApp app;
        std::size_t tables = 0;
        std::size_t direct_tables = 0;
        is >> app.tier >> app.direct_tiles_per_frame >> tables >>
            direct_tables;
        for (std::size_t t = 0; t < tables; ++t) {
            app.tables.push_back(loadTable(is));
        }
        for (std::size_t t = 0; t < direct_tables; ++t) {
            app.direct_tables.push_back(loadTable(is));
        }
        bundle.apps.push_back(std::move(app));
    }
    if (!is) {
        util::fatal("kodan::core::io: truncated bundle");
    }
    return bundle;
}

void
saveLogic(std::ostream &os, const SelectionLogic &logic)
{
    os << "selection-logic " << logic.tiles_per_side << ' '
       << logic.per_context.size() << '\n';
    for (const Action &action : logic.per_context) {
        os << static_cast<int>(action.kind) << ' ' << action.model
           << '\n';
    }
}

SelectionLogic
loadLogic(std::istream &is)
{
    expectTag(is, "selection-logic");
    SelectionLogic logic;
    std::size_t contexts = 0;
    is >> logic.tiles_per_side >> contexts;
    for (std::size_t c = 0; c < contexts; ++c) {
        int kind = 0;
        Action action;
        is >> kind >> action.model;
        action.kind = static_cast<ActionKind>(kind);
        logic.per_context.push_back(action);
    }
    if (!is) {
        util::fatal("kodan::core::io: truncated selection logic");
    }
    return logic;
}

void
saveZoo(std::ostream &os, const SpecializedZoo &zoo)
{
    os << "zoo " << zoo.entries.size() << ' ' << zoo.reference << '\n';
    zoo.scaler.save(os);
    for (const auto &entry : zoo.entries) {
        os << "entry " << entry.tier << ' ' << entry.context << '\n';
        entry.net.save(os);
        // The int8 sibling round-trips as its calibrated activation
        // scales alone: the quantized weights are a pure function of
        // the fp64 net and those scales, so reconstruction is exact
        // and the on-disk format stays small.
        if (entry.quant != nullptr) {
            const auto &scales = entry.quant->actScales();
            os << "quant " << scales.size();
            os.precision(17);
            for (const double s : scales) {
                os << ' ' << s;
            }
            os << '\n';
        } else {
            os << "noquant\n";
        }
    }
}

SpecializedZoo
loadZoo(std::istream &is)
{
    expectTag(is, "zoo");
    std::size_t entries = 0;
    SpecializedZoo zoo;
    is >> entries >> zoo.reference;
    zoo.scaler = ml::Standardizer::load(is);
    for (std::size_t e = 0; e < entries; ++e) {
        expectTag(is, "entry");
        int tier = 0;
        int context = 0;
        is >> tier >> context;
        ml::Mlp net = ml::Mlp::load(is);
        zoo.entries.push_back(ZooEntry{std::move(net), tier, context});
        std::string quant_tag;
        is >> quant_tag;
        if (quant_tag == "quant") {
            std::size_t scale_count = 0;
            is >> scale_count;
            std::vector<double> scales(scale_count);
            for (auto &s : scales) {
                is >> s;
            }
            zoo.entries.back().quant =
                std::make_shared<ml::QuantizedMlp>(
                    zoo.entries.back().net, scales);
        } else if (quant_tag != "noquant") {
            util::fatal("kodan::core::io: expected 'quant' or "
                        "'noquant', got '" +
                        quant_tag + "'");
        }
    }
    if (!is) {
        util::fatal("kodan::core::io: truncated zoo");
    }
    return zoo;
}

void
DeploymentPackage::save(std::ostream &os) const
{
    os << "kodan-deployment 2 " << static_cast<int>(target) << '\n';
    saveLogic(os, logic);
    engine.save(os);
    saveZoo(os, zoo);
}

DeploymentPackage
DeploymentPackage::load(std::istream &is)
{
    expectTag(is, "kodan-deployment");
    int version = 0;
    int target = 0;
    is >> version >> target;
    if (version != 2) {
        util::fatal("kodan::core::io: deployment version mismatch");
    }
    SelectionLogic logic = loadLogic(is);
    ContextEngine engine = ContextEngine::load(is);
    SpecializedZoo zoo = loadZoo(is);
    return DeploymentPackage{std::move(logic), std::move(engine),
                             std::move(zoo),
                             static_cast<hw::Target>(target)};
}

bool
tryLoadBundle(const std::string &path, MeasuredBundle &bundle)
{
    std::ifstream file(path);
    if (!file) {
        return false;
    }
    // A stale cache from an older format is not an error — report it
    // missing so the caller regenerates (loadBundle would fatal).
    std::string tag;
    int version = 0;
    file >> tag >> version;
    if (tag != "kodan-bundle" || version != kBundleVersion) {
        KODAN_LOG(util::LogLevel::Info,
                  "ignoring incompatible bundle cache at " << path
                  << " (version " << version << ", want "
                  << kBundleVersion << ")");
        return false;
    }
    file.seekg(0);
    bundle = loadBundle(file);
    return true;
}

void
storeBundle(const std::string &path, const MeasuredBundle &bundle)
{
    std::ofstream file(path);
    if (!file) {
        KODAN_LOG(util::LogLevel::Warn,
                  "could not write bundle to " << path);
        return;
    }
    saveBundle(file, bundle);
}

} // namespace kodan::core
