#include "core/runtime.hpp"

#include <cassert>

#include "data/tiler.hpp"
#include "ml/kernels.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::core {

Runtime::Runtime(const SelectionLogic &logic, const ContextEngine *engine,
                 const SpecializedZoo *zoo, hw::Target target)
    : logic_(logic), engine_(engine), zoo_(zoo), target_(target)
{
    assert(engine != nullptr);
    assert(zoo != nullptr);
    assert(static_cast<int>(logic_.per_context.size()) ==
           engine->contextCount());
}

FrameReport
Runtime::processFrame(const data::FrameSample &frame) const
{
    KODAN_TRACE_SCOPE("runtime.frame.process");
    FrameWork work;
    stageTileClassify(frame, work);
    for (std::size_t t = 0; t < work.tiles.size(); ++t) {
        if (logic_.per_context[work.contexts[t]].kind ==
            ActionKind::RunModel) {
            stageInferTile(work, t);
        }
    }
    stageElide(work);
    stageRecord(work);
    return work.report;
}

void
Runtime::stageTileClassify(const data::FrameSample &frame,
                           FrameWork &work) const
{
    work.frame = &frame;
    const data::Tiler tiler(logic_.tiles_per_side);
    tiler.tileInto(frame, work.tiles);
    // One batched engine forward over the frame's tiles; identical
    // context ids to the per-tile classify calls.
    engine_->classifyBatch(work.tiles, work.contexts);
    // Sized here so the infer stage writes straight into it; entries of
    // elided tiles stay unwritten (and unread).
    work.keep.resize(work.tiles.size() * data::kBlocksPerTile);
}

void
Runtime::stageTileClassifyLazy(const data::FrameSample &frame,
                               FrameWork &work) const
{
    work.frame = &frame;
    const data::Tiler tiler(logic_.tiles_per_side);
    tiler.statsInto(frame, work.tiles);
    engine_->classifyBatch(work.tiles, work.contexts);
    work.keep.resize(work.tiles.size() * data::kBlocksPerTile);
}

void
Runtime::stageInferTile(FrameWork &work, std::size_t t) const
{
    // Lazily-tiled frames (stageTileClassifyLazy) materialize the
    // block grid only here, for exactly the modeled tiles.
    if (work.tiles[t].block_features.empty()) {
        data::Tiler::decimate(work.tiles[t]);
    }
    const auto &tile = work.tiles[t];
    const Action &action = logic_.per_context[work.contexts[t]];
    assert(action.kind == ActionKind::RunModel);
    assert(action.model >= 0 &&
           action.model < static_cast<int>(zoo_->entries.size()));
    // Per-block keep decision; the model runs once over the tile's
    // block batch.
    auto &arena = ml::kernels::scratch();
    ml::kernels::Scratch::Frame scratch_frame(arena);
    double *scaled = arena.alloc(std::size_t{data::kBlocksPerTile} *
                                 data::kBlockInputDim);
    zoo_->tileInputs(tile, scaled);
    double *probs = arena.alloc(data::kBlocksPerTile);
    zoo_->predictRows(action.model, scaled, data::kBlocksPerTile, probs);
    keepFromProbs(probs, data::kBlocksPerTile,
                  work.keep.data() + t * data::kBlocksPerTile);
}

void
Runtime::keepFromProbs(const double *probs, std::size_t count,
                       std::uint8_t *keep)
{
    for (std::size_t i = 0; i < count; ++i) {
        keep[i] = probs[i] < 0.5 ? 1 : 0;
    }
}

void
Runtime::stageElide(FrameWork &work) const
{
    FrameReport &report = work.report;
    report = FrameReport{};
    const auto &tiles = work.tiles;
    const double frame_cells =
        static_cast<double>(work.frame->cellCount());
    const double engine_time = hw::CostModel::contextEngineTime(target_);

    for (std::size_t t = 0; t < tiles.size(); ++t) {
        const auto &tile = tiles[t];
        report.compute_time += engine_time;
        const int ctx = work.contexts[t];
        const Action &action = logic_.per_context[ctx];
        const double tile_cells = static_cast<double>(tile.cellCount());

        switch (action.kind) {
          case ActionKind::Discard: {
            ++report.tiles_discarded;
            for (int r = 0; r < tile.cell_rows; ++r) {
                for (int c = 0; c < tile.cell_cols; ++c) {
                    report.cells.add(false, !tile.cloudyLocal(r, c));
                }
            }
            break;
          }
          case ActionKind::Downlink: {
            ++report.tiles_downlinked;
            double high_cells = 0.0;
            for (int r = 0; r < tile.cell_rows; ++r) {
                for (int c = 0; c < tile.cell_cols; ++c) {
                    const bool high = !tile.cloudyLocal(r, c);
                    report.cells.add(true, high);
                    if (high) {
                        high_cells += 1.0;
                    }
                }
            }
            report.product_fraction += tile_cells / frame_cells;
            report.product_high_fraction += high_cells / frame_cells;
            break;
          }
          case ActionKind::RunModel: {
            ++report.tiles_modeled;
            assert(action.model >= 0 &&
                   action.model <
                       static_cast<int>(zoo_->entries.size()));
            const ZooEntry &entry = zoo_->entries[action.model];
            const std::size_t params =
                hw::CostModel::tierParamCount(entry.tier);
            report.compute_time +=
                entry.runsQuantized()
                    ? hw::CostModel::modelTimeQuant(params, target_)
                    : hw::CostModel::modelTime(params, target_);
            const std::uint8_t *keep =
                work.keep.data() + t * data::kBlocksPerTile;
            for (int r = 0; r < tile.cell_rows; ++r) {
                for (int c = 0; c < tile.cell_cols; ++c) {
                    const bool kept = keep[tile.blockOfCell(r, c)] != 0;
                    const bool high = !tile.cloudyLocal(r, c);
                    report.cells.add(kept, high);
                    if (kept) {
                        report.product_fraction += 1.0 / frame_cells;
                        if (high) {
                            report.product_high_fraction +=
                                1.0 / frame_cells;
                        }
                    }
                }
            }
            break;
          }
        }
    }
}

void
Runtime::stageRecord(const FrameWork &work) const
{
    const FrameReport &report = work.report;
    // Accounting only — bulk adds after the hot loop, never per cell, so
    // the instrumented path stays cheap and the report is untouched.
    if (telemetry::enabled()) {
        const double engine_time =
            hw::CostModel::contextEngineTime(target_);
        const double engine_total =
            engine_time * static_cast<double>(work.tiles.size());
        KODAN_COUNT("runtime.frames.processed");
        KODAN_COUNT_ADD("runtime.tiles.discarded",
                        report.tiles_discarded);
        KODAN_COUNT_ADD("runtime.tiles.downlinked",
                        report.tiles_downlinked);
        KODAN_COUNT_ADD("runtime.tiles.modeled", report.tiles_modeled);
        // Split the modeled count by numeric path so a flipped
        // KODAN_QUANT knob is visible in the metrics dump.
        std::int64_t quant_tiles = 0;
        for (std::size_t t = 0; t < work.tiles.size(); ++t) {
            const Action &action =
                logic_.per_context[work.contexts[t]];
            if (action.kind == ActionKind::RunModel &&
                zoo_->entries[action.model].runsQuantized()) {
                ++quant_tiles;
            }
        }
        KODAN_COUNT_ADD("runtime.tiles.modeled_quant", quant_tiles);
        // Per-technique modeled compute split: tiling/classification is
        // the context-engine pass; specialization is the model time on
        // non-elided tiles; elision's effect is the modeled time the
        // reference model would have spent on the elided tiles.
        KODAN_GAUGE_ADD("runtime.time.tiling_classification_s",
                        engine_total);
        KODAN_GAUGE_ADD("runtime.time.specialization_s",
                        report.compute_time - engine_total);
        const std::int64_t elided =
            report.tiles_discarded + report.tiles_downlinked;
        if (elided > 0 && !zoo_->entries.empty()) {
            const ZooEntry &ref = zoo_->entries[zoo_->reference];
            const std::size_t ref_params =
                hw::CostModel::tierParamCount(ref.tier);
            const double reference_tile_time =
                ref.runsQuantized()
                    ? hw::CostModel::modelTimeQuant(ref_params, target_)
                    : hw::CostModel::modelTime(ref_params, target_);
            KODAN_GAUGE_ADD("runtime.time.elision_saved_s",
                            reference_tile_time *
                                static_cast<double>(elided));
        }
        KODAN_HISTOGRAM("runtime.frame.compute_time_s",
                        report.compute_time, 0.5, 1.0, 2.0, 4.7, 10.0,
                        22.0, 60.0, 120.0);
        // Mission-time series, binned by the frame's capture stamp:
        // where the histogram answers "how long do frames take", these
        // answer "how did compute and value density evolve over the
        // pass".
        KODAN_TS_RECORD("runtime.frame.compute_s", work.frame->time,
                        report.compute_time, 60.0);
        KODAN_TS_RECORD("runtime.frame.dvd_contribution",
                        work.frame->time, report.product_high_fraction,
                        60.0);
    }
    if (telemetry::journalEnabled()) {
        // Flight-recorder entries: the per-frame technique decision and
        // the elision verdict. Derived purely from the finished report —
        // no feedback into the computation.
        telemetry::JournalEventBuilder("runtime.frame.decision")
            .i64("tiles_discarded", report.tiles_discarded)
            .i64("tiles_downlinked", report.tiles_downlinked)
            .i64("tiles_modeled", report.tiles_modeled)
            .f64("compute_time_s", report.compute_time)
            .f64("product_fraction", report.product_fraction)
            .f64("dvd_contribution", report.product_high_fraction);
        const std::int64_t elided =
            report.tiles_discarded + report.tiles_downlinked;
        const std::int64_t tiles = elided + report.tiles_modeled;
        telemetry::JournalEventBuilder("runtime.frame.elision")
            .text("verdict", elided == 0          ? "none"
                             : elided == tiles    ? "full"
                                                  : "partial")
            .i64("tiles_elided", elided)
            .i64("tiles_total", tiles);
    }
}

FrameReport
Runtime::processFrames(const std::vector<data::FrameSample> &frames) const
{
    // An empty batch is a no-op: no profile scope, no counter, no
    // journal region, no aggregate event — callers polling an idle
    // source don't pollute the telemetry stream with zero-frame noise.
    if (frames.empty()) {
        return {};
    }
    KODAN_TRACE_SCOPE("runtime.batch.process");
    KODAN_COUNT_ADD("runtime.frames.batched", frames.size());
    // One journal region per batch; frame i records into slot i + 1, so
    // the exported journal is byte-identical for any KODAN_THREADS.
    telemetry::JournalRegion journal_region("runtime.batch");
    // Frames are independent; per-frame reports land at their frame
    // index and are reduced in that order, so the batch aggregate is
    // bit-identical to the serial loop for any thread count.
    std::vector<FrameReport> reports(frames.size());
    util::parallelFor(frames.size(), [&](std::size_t i) {
        telemetry::JournalScope journal_scope(journal_region.id(), i);
        reports[i] = processFrame(frames[i]);
    });
    FrameReport total = aggregate(reports);
    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("runtime.batch.aggregate")
            .i64("frames", static_cast<std::int64_t>(frames.size()))
            .f64("mean_compute_time_s", total.compute_time)
            .f64("mean_product_fraction", total.product_fraction)
            .i64("tiles_discarded", total.tiles_discarded)
            .i64("tiles_downlinked", total.tiles_downlinked)
            .i64("tiles_modeled", total.tiles_modeled);
    }
    return total;
}

FrameReport
Runtime::aggregate(const std::vector<FrameReport> &reports)
{
    FrameReport total;
    if (reports.empty()) {
        return total;
    }
    for (const auto &report : reports) {
        total.compute_time += report.compute_time;
        total.product_fraction += report.product_fraction;
        total.product_high_fraction += report.product_high_fraction;
        total.tiles_discarded += report.tiles_discarded;
        total.tiles_downlinked += report.tiles_downlinked;
        total.tiles_modeled += report.tiles_modeled;
        total.cells.merge(report.cells);
    }
    const double n = static_cast<double>(reports.size());
    total.compute_time /= n;
    total.product_fraction /= n;
    total.product_high_fraction /= n;
    return total;
}

FrameReport
Runtime::mergeAggregates(const FrameReport &a, std::size_t frames_a,
                         const FrameReport &b, std::size_t frames_b)
{
    if (frames_a == 0) {
        return b;
    }
    if (frames_b == 0) {
        return a;
    }
    const double na = static_cast<double>(frames_a);
    const double nb = static_cast<double>(frames_b);
    const double n = na + nb;
    FrameReport total;
    // The per-frame means must be recombined weighted by frame count;
    // (a.x + b.x) / 2 would be the mean-of-means bug for na != nb.
    total.compute_time = (a.compute_time * na + b.compute_time * nb) / n;
    total.product_fraction =
        (a.product_fraction * na + b.product_fraction * nb) / n;
    total.product_high_fraction =
        (a.product_high_fraction * na + b.product_high_fraction * nb) / n;
    total.tiles_discarded = a.tiles_discarded + b.tiles_discarded;
    total.tiles_downlinked = a.tiles_downlinked + b.tiles_downlinked;
    total.tiles_modeled = a.tiles_modeled + b.tiles_modeled;
    total.cells = a.cells;
    total.cells.merge(b.cells);
    return total;
}

} // namespace kodan::core
