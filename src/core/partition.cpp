#include "core/partition.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace kodan::core {

int
Partition::assignTile(const data::TileData &tile) const
{
    if (expert) {
        // Dominant terrain class is the context id.
        int best = 0;
        for (int k = 1; k < data::kTerrainCount; ++k) {
            if (tile.label_vector[k] > tile.label_vector[best]) {
                best = k;
            }
        }
        return best;
    }
    std::array<double, data::kLabelDim> scaled{};
    std::copy(tile.label_vector.begin(), tile.label_vector.end(),
              scaled.begin());
    scaler.transformRow(scaled.data());
    if (use_pca) {
        ml::Matrix row(1, data::kLabelDim);
        std::copy(scaled.begin(), scaled.end(), row.row(0));
        const ml::Matrix projected = pca.transform(row);
        return clustering.nearest(projected.row(0));
    }
    return clustering.nearest(scaled.data());
}

ContextPartitioner::ContextPartitioner(const PartitionOptions &options)
    : options_(options)
{
    assert(!options_.k_candidates.empty());
    assert(!options_.metrics.empty());
}

Partition
ContextPartitioner::fitAuto(const std::vector<data::TileData> &tiles,
                            util::Rng &rng) const
{
    assert(!tiles.empty());
    ml::Matrix labels(tiles.size(), data::kLabelDim);
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        std::copy(tiles[i].label_vector.begin(),
                  tiles[i].label_vector.end(), labels.row(i));
    }

    Partition best;
    best.silhouette = -2.0;
    ml::Standardizer scaler;
    scaler.fit(labels);
    const ml::Matrix scaled = scaler.transform(labels);

    // Optional PCA-projected candidate space (a rotation + projection of
    // the standardized label vectors).
    ml::Pca pca;
    ml::Matrix projected;
    const bool try_pca =
        options_.sweep_pca &&
        options_.pca_components < data::kLabelDim &&
        tiles.size() >= 2;
    if (try_pca) {
        pca.fit(scaled, options_.pca_components);
        projected = pca.transform(scaled);
    }

    for (int space = 0; space < (try_pca ? 2 : 1); ++space) {
        const ml::Matrix &candidates = space == 0 ? scaled : projected;
        for (ml::Distance metric : options_.metrics) {
            for (int k : options_.k_candidates) {
                if (static_cast<std::size_t>(k) > tiles.size()) {
                    continue;
                }
                const ml::KMeans kmeans(k, metric, 64,
                                        options_.restarts);
                ml::KMeansResult result = kmeans.fit(candidates, rng);
                const double score =
                    ml::silhouetteScore(candidates, result);
                if (score > best.silhouette) {
                    best.silhouette = score;
                    best.context_count = k;
                    best.metric = metric;
                    best.use_pca = space == 1;
                    best.assignment = result.assignment;
                    best.clustering = std::move(result);
                }
            }
        }
    }
    best.scaler = scaler;
    best.pca = pca;
    best.expert = false;
    assert(best.context_count > 0);
    return best;
}

Partition
ContextPartitioner::fitExpert(const std::vector<data::TileData> &tiles) const
{
    Partition partition;
    partition.expert = true;
    partition.context_count = data::kTerrainCount;
    partition.assignment.reserve(tiles.size());
    for (const auto &tile : tiles) {
        partition.assignment.push_back(partition.assignTile(tile));
    }
    return partition;
}

std::vector<ContextInfo>
summarizeContexts(const std::vector<data::TileData> &tiles,
                  const std::vector<int> &assignment, int context_count)
{
    assert(tiles.size() == assignment.size());
    std::vector<ContextInfo> infos(context_count);
    std::vector<std::array<double, data::kTerrainCount>> terrain(
        context_count);
    std::vector<std::size_t> counts(context_count, 0);

    for (std::size_t i = 0; i < tiles.size(); ++i) {
        const int c = assignment[i];
        assert(c >= 0 && c < context_count);
        ++counts[c];
        infos[c].prevalence += tiles[i].high_value_fraction;
        for (int k = 0; k < data::kTerrainCount; ++k) {
            terrain[c][k] += tiles[i].label_vector[k];
        }
    }
    for (int c = 0; c < context_count; ++c) {
        infos[c].id = c;
        if (counts[c] == 0) {
            infos[c].description = "(empty)";
            continue;
        }
        const double n = static_cast<double>(counts[c]);
        infos[c].tile_share = n / static_cast<double>(tiles.size());
        infos[c].prevalence /= n;
        int dominant = 0;
        for (int k = 1; k < data::kTerrainCount; ++k) {
            if (terrain[c][k] > terrain[c][dominant]) {
                dominant = k;
            }
        }
        infos[c].description =
            data::terrainName(static_cast<data::Terrain>(dominant));
        if (infos[c].prevalence < 0.35) {
            infos[c].description += "+cloudy";
        }
    }
    return infos;
}

} // namespace kodan::core
