/**
 * @file
 * Deployment evaluation: measuring per-context action statistics on
 * validation data and projecting them onto a target system to obtain
 * downlink data value density (DVD).
 *
 * The projection follows the paper's accounting: a saturated downlink of
 * B bits/day is filled first with on-orbit products (highest value
 * density first), then — if capacity remains — with raw unprocessed
 * frames. DVD is the high-value fraction of what is actually sent.
 */

#ifndef KODAN_CORE_EVALUATE_HPP
#define KODAN_CORE_EVALUATE_HPP

#include <vector>

#include "core/engine.hpp"
#include "core/specialize.hpp"
#include "core/types.hpp"
#include "data/generator.hpp"
#include "data/tiler.hpp"
#include "hw/target.hpp"

namespace kodan::core {

/**
 * Default saturated-downlink budget (bits/day/satellite): ~8600 s of
 * granted contact at 384 Mbit/s, as the mission simulator measures for
 * the Landsat-8-like ground segment.
 */
inline constexpr double kDefaultDownlinkBitsPerDay = 3.3e12;

/** Characteristics of a deployment target system. */
struct SystemProfile
{
    /** Compute hardware on board. */
    hw::Target target = hw::Target::Orin15W;
    /** Frame capture period = processing deadline (s). */
    double frame_deadline = 22.2;
    /** Frames observed per day. */
    double frames_per_day = 3891.0;
    /** Raw bits per frame. */
    double frame_bits = 4.4e9;
    /** Saturated downlink capacity (bits/day). */
    double downlink_bits_per_day = kDefaultDownlinkBitsPerDay;
    /** Global high-value prevalence of raw frames. */
    double prevalence = 0.48;

    /**
     * Landsat-8-like profile for a hardware target: deadline and frame
     * volume derived from the Landsat-8 orbit and multispectral camera.
     *
     * @param target Compute hardware.
     * @param prevalence Raw high-value prevalence (dataset-dependent).
     * @param downlink_bits_per_day Saturated downlink budget.
     */
    static SystemProfile landsat8(
        hw::Target target, double prevalence = 0.48,
        double downlink_bits_per_day = kDefaultDownlinkBitsPerDay);
};

/**
 * Measured candidate-action statistics for every context at one tiling.
 */
struct ContextActionTable
{
    /** Tiles per frame side this table was measured at. */
    int tiles_per_side = 0;
    /** Context summaries (share/prevalence at this tiling). */
    std::vector<ContextInfo> contexts;
    /** Candidate actions per context. */
    std::vector<std::vector<Action>> actions;
    /** Stats matching @c actions. */
    std::vector<std::vector<ActionStats>> stats;

    /** Number of contexts. */
    int contextCount() const { return static_cast<int>(contexts.size()); }

    /**
     * Index of @p action among context @p context's candidates;
     * -1 when absent.
     */
    int findAction(int context, const Action &action) const;
};

/** Projected outcome of one deployment configuration. */
struct DeploymentOutcome
{
    /** Mean processing time per frame (s), including the engine. */
    double frame_time = 0.0;
    /** Fraction of frames processed within the deadline (long-run). */
    double processed_fraction = 1.0;
    /** Data value density of the saturated downlink. */
    double dvd = 0.0;
    /** Bits sent per day. */
    double bits_sent = 0.0;
    /** Truly high-value bits sent per day. */
    double high_bits_sent = 0.0;
    /** Value density of the products alone (excl. raw fill). */
    double product_precision = 0.0;
    /** Cell-label accuracy over processed frames. */
    double cell_accuracy = 0.0;
    /** Fraction of observed high-value bits that reach the ground. */
    double high_value_yield = 0.0;
};

/**
 * Project a per-context action assignment onto a system profile.
 *
 * @param profile Target system.
 * @param table Measured action table (defines the tiling).
 * @param per_context Chosen action per context; each must exist in the
 *        table's candidates for that context.
 * @param use_context_engine Charge the context-engine time per tile
 *        (false for the direct-deploy baseline).
 * @param send_unprocessed_raw Queue raw unprocessed frames after the
 *        products.
 * @param force_quant_time Charge every RunModel action the int8
 *        quantized per-tile time (CostModel::modelTimeQuant) even when
 *        its stats were measured at fp64 — the what-if column of the
 *        frame-time figures. Stats rows whose @c quantized flag is set
 *        are charged the quantized time regardless of this parameter.
 */
DeploymentOutcome evaluateLogic(const SystemProfile &profile,
                                const ContextActionTable &table,
                                const std::vector<Action> &per_context,
                                bool use_context_engine = true,
                                bool send_unprocessed_raw = true,
                                bool force_quant_time = false);

/**
 * The bent-pipe baseline outcome on a profile: raw frames fill the
 * downlink indiscriminately, so DVD equals the prevalence.
 */
DeploymentOutcome bentPipeOutcome(const SystemProfile &profile);

/**
 * Measures action statistics by running trained models on validation
 * frames.
 */
class DeploymentEvaluator
{
  public:
    /**
     * @param zoo Trained model zoo (not owned; must outlive this).
     * @param engine Trained context engine (not owned; may be null for
     *        direct-deploy measurement).
     */
    DeploymentEvaluator(const SpecializedZoo *zoo,
                        const ContextEngine *engine);

    /**
     * Measure the full candidate table at a tiling.
     *
     * Candidates per context are Discard, Downlink, and every zoo model
     * applicable to the context (its specialized candidates plus the
     * global reference).
     *
     * @param frames Validation frames.
     * @param tiles_per_side Tiling to measure at.
     */
    ContextActionTable measureTable(
        const std::vector<data::FrameSample> &frames,
        int tiles_per_side) const;

    /**
     * Measure a single-context table for the direct-deploy baseline:
     * every tile is one context whose sole candidate is the reference
     * model (no engine, no elision).
     */
    ContextActionTable measureDirectTable(
        const std::vector<data::FrameSample> &frames,
        int tiles_per_side) const;

    /**
     * Stats of one zoo entry over an explicit set of tiles (helper for
     * the per-technique figures).
     */
    ActionStats measureModelOnTiles(
        int entry, const std::vector<const data::TileData *> &tiles) const;

  private:
    const SpecializedZoo *zoo_;
    const ContextEngine *engine_;
};

} // namespace kodan::core

#endif // KODAN_CORE_EVALUATE_HPP
