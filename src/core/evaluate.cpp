#include "core/evaluate.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ml/kernels.hpp"
#include "orbit/propagator.hpp"
#include "sense/camera.hpp"
#include "telemetry/telemetry.hpp"
#include "util/units.hpp"

namespace kodan::core {

SystemProfile
SystemProfile::landsat8(hw::Target target, double prevalence,
                        double downlink_bits_per_day)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto camera = sense::CameraModel::landsat8Multispectral();

    SystemProfile profile;
    profile.target = target;
    profile.frame_deadline = camera.framePeriod(sat.groundTrackSpeed());
    profile.frames_per_day = util::kSecondsPerDay / profile.frame_deadline;
    profile.frame_bits = camera.frameBits();
    profile.downlink_bits_per_day = downlink_bits_per_day;
    profile.prevalence = prevalence;
    return profile;
}

int
ContextActionTable::findAction(int context, const Action &action) const
{
    assert(context >= 0 && context < contextCount());
    const auto &cands = actions[context];
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (cands[i] == action) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

DeploymentEvaluator::DeploymentEvaluator(const SpecializedZoo *zoo,
                                         const ContextEngine *engine)
    : zoo_(zoo), engine_(engine)
{
    assert(zoo != nullptr);
}

namespace {

/** Per-(context, candidate) accumulators. */
struct ActionAccum
{
    double total_cells = 0.0;
    double kept_cells = 0.0;
    double kept_high_cells = 0.0;
    double correct_cells = 0.0;

    ActionStats finish(std::size_t model_params) const
    {
        ActionStats stats;
        if (total_cells > 0.0) {
            stats.bits_fraction = kept_cells / total_cells;
            stats.high_fraction = kept_high_cells / total_cells;
            stats.cell_accuracy = correct_cells / total_cells;
        }
        stats.model_params = model_params;
        return stats;
    }
};

/** Per-block truth counts of one tile. */
struct BlockTruth
{
    std::array<double, data::kBlocksPerTile> high{};
    std::array<double, data::kBlocksPerTile> total{};
    double tile_high = 0.0;
    double tile_total = 0.0;

    explicit BlockTruth(const data::TileData &tile)
    {
        for (int r = 0; r < tile.cell_rows; ++r) {
            for (int c = 0; c < tile.cell_cols; ++c) {
                const int block = tile.blockOfCell(r, c);
                total[block] += 1.0;
                if (!tile.cloudyLocal(r, c)) {
                    high[block] += 1.0;
                }
            }
        }
        for (int b = 0; b < data::kBlocksPerTile; ++b) {
            tile_high += high[b];
            tile_total += total[b];
        }
    }
};

} // namespace

ContextActionTable
DeploymentEvaluator::measureTable(
    const std::vector<data::FrameSample> &frames, int tiles_per_side) const
{
    KODAN_TRACE_SCOPE("evaluate.table.measure");
    assert(engine_ != nullptr);
    const int context_count = engine_->contextCount();

    ContextActionTable table;
    table.tiles_per_side = tiles_per_side;
    table.contexts.resize(context_count);
    table.actions.resize(context_count);
    table.stats.resize(context_count);

    // Candidate actions per context: Discard, Downlink, applicable models.
    std::vector<std::vector<int>> model_cands(context_count);
    for (int c = 0; c < context_count; ++c) {
        table.actions[c].push_back({ActionKind::Discard, -1});
        table.actions[c].push_back({ActionKind::Downlink, -1});
        model_cands[c] = zoo_->candidatesFor(c);
        for (int entry : model_cands[c]) {
            table.actions[c].push_back({ActionKind::RunModel, entry});
        }
    }

    std::vector<std::vector<ActionAccum>> accums(context_count);
    for (int c = 0; c < context_count; ++c) {
        accums[c].resize(table.actions[c].size());
    }
    std::vector<double> context_tiles(context_count, 0.0);
    std::vector<double> context_cells(context_count, 0.0);
    std::vector<double> context_high(context_count, 0.0);
    double total_tiles = 0.0;

    const data::Tiler tiler(tiles_per_side);
    std::vector<int> tile_contexts;
    for (const auto &frame : frames) {
        const auto tiles = tiler.tile(frame);
        // One batched engine forward per frame instead of one matvec
        // chain per tile.
        engine_->classifyBatch(tiles, tile_contexts);
        std::vector<BlockTruth> truths;
        truths.reserve(tiles.size());
        std::vector<std::vector<std::size_t>> by_context(context_count);
        for (std::size_t t = 0; t < tiles.size(); ++t) {
            const auto &tile = tiles[t];
            const int ctx = tile_contexts[t];
            truths.emplace_back(tile);
            const BlockTruth &truth = truths.back();
            ++context_tiles[ctx];
            ++total_tiles;
            context_cells[ctx] += truth.tile_total;
            context_high[ctx] += truth.tile_high;

            auto &ctx_accums = accums[ctx];
            // Candidate 0: Discard — keep nothing; low-value labels are
            // correct on cloudy cells.
            ctx_accums[0].total_cells += truth.tile_total;
            ctx_accums[0].correct_cells +=
                truth.tile_total - truth.tile_high;
            // Candidate 1: Downlink — keep everything raw.
            ctx_accums[1].total_cells += truth.tile_total;
            ctx_accums[1].kept_cells += truth.tile_total;
            ctx_accums[1].kept_high_cells += truth.tile_high;
            ctx_accums[1].correct_cells += truth.tile_high;
            if (!model_cands[ctx].empty()) {
                by_context[ctx].push_back(t);
            }
        }
        // Model candidates: one standardized block batch per context
        // covering every one of its tiles in this frame, shared by all
        // of the context's candidates — the frame's inference collapses
        // to one GEMM chain per candidate. Per accumulator, the tiles
        // contribute in the same ascending order as the per-tile loop,
        // so the sums are bit-identical to it.
        auto &arena = ml::kernels::scratch();
        for (int ctx = 0; ctx < context_count; ++ctx) {
            const auto &group = by_context[ctx];
            if (group.empty()) {
                continue;
            }
            ml::kernels::Scratch::Frame scratch_frame(arena);
            const std::size_t rows =
                group.size() * data::kBlocksPerTile;
            double *scaled =
                arena.alloc(rows * data::kBlockInputDim);
            for (std::size_t g = 0; g < group.size(); ++g) {
                zoo_->tileInputs(tiles[group[g]],
                                 scaled + g *
                                              std::size_t{
                                                  data::kBlocksPerTile} *
                                              data::kBlockInputDim);
            }
            double *probs = arena.alloc(rows);
            auto &ctx_accums = accums[ctx];
            for (std::size_t m = 0; m < model_cands[ctx].size(); ++m) {
                const int entry = model_cands[ctx][m];
                ActionAccum &accum = ctx_accums[2 + m];
                zoo_->predictRows(entry, scaled, rows, probs);
                for (std::size_t g = 0; g < group.size(); ++g) {
                    const BlockTruth &truth = truths[group[g]];
                    accum.total_cells += truth.tile_total;
                    const double *tile_probs =
                        probs + g * data::kBlocksPerTile;
                    for (int b = 0; b < data::kBlocksPerTile; ++b) {
                        if (truth.total[b] <= 0.0) {
                            continue;
                        }
                        const double p_cloudy = tile_probs[b];
                        if (p_cloudy < 0.5) {
                            // Block kept as high-value.
                            accum.kept_cells += truth.total[b];
                            accum.kept_high_cells += truth.high[b];
                            accum.correct_cells += truth.high[b];
                        } else {
                            accum.correct_cells +=
                                truth.total[b] - truth.high[b];
                        }
                    }
                }
            }
        }
    }

    for (int c = 0; c < context_count; ++c) {
        table.contexts[c].id = c;
        table.contexts[c].tile_share =
            total_tiles > 0.0 ? context_tiles[c] / total_tiles : 0.0;
        table.contexts[c].prevalence =
            context_cells[c] > 0.0 ? context_high[c] / context_cells[c]
                                   : 0.0;
        table.stats[c].reserve(table.actions[c].size());
        for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
            const Action &action = table.actions[c][a];
            const std::size_t params =
                action.kind == ActionKind::RunModel
                    ? hw::CostModel::tierParamCount(
                          zoo_->entries[action.model].tier)
                    : 0;
            ActionStats stats = accums[c][a].finish(params);
            stats.quantized =
                action.kind == ActionKind::RunModel &&
                zoo_->entries[action.model].runsQuantized();
            table.stats[c].push_back(stats);
        }
    }
    return table;
}

ContextActionTable
DeploymentEvaluator::measureDirectTable(
    const std::vector<data::FrameSample> &frames, int tiles_per_side) const
{
    KODAN_TRACE_SCOPE("evaluate.direct.measure");
    ContextActionTable table;
    table.tiles_per_side = tiles_per_side;
    table.contexts.resize(1);
    table.actions.resize(1);
    table.stats.resize(1);
    table.actions[0].push_back({ActionKind::RunModel, zoo_->reference});

    ActionAccum accum;
    double cells = 0.0;
    double high = 0.0;
    const data::Tiler tiler(tiles_per_side);
    for (const auto &frame : frames) {
        const auto tiles = tiler.tile(frame);
        // One standardized batch + one forward chain per frame; the
        // per-tile accumulation below runs in the same ascending order
        // as the per-tile inference it replaced — identical bits.
        auto &arena = ml::kernels::scratch();
        ml::kernels::Scratch::Frame scratch_frame(arena);
        const std::size_t rows =
            tiles.size() * data::kBlocksPerTile;
        double *scaled = arena.alloc(rows * data::kBlockInputDim);
        for (std::size_t t = 0; t < tiles.size(); ++t) {
            zoo_->tileInputs(tiles[t],
                             scaled + t *
                                          std::size_t{
                                              data::kBlocksPerTile} *
                                          data::kBlockInputDim);
        }
        double *probs = arena.alloc(rows);
        zoo_->predictRows(zoo_->reference, scaled, rows, probs);
        for (std::size_t t = 0; t < tiles.size(); ++t) {
            const BlockTruth truth(tiles[t]);
            cells += truth.tile_total;
            high += truth.tile_high;
            accum.total_cells += truth.tile_total;
            const double *tile_probs = probs + t * data::kBlocksPerTile;
            for (int b = 0; b < data::kBlocksPerTile; ++b) {
                if (truth.total[b] <= 0.0) {
                    continue;
                }
                const double p_cloudy = tile_probs[b];
                if (p_cloudy < 0.5) {
                    accum.kept_cells += truth.total[b];
                    accum.kept_high_cells += truth.high[b];
                    accum.correct_cells += truth.high[b];
                } else {
                    accum.correct_cells += truth.total[b] - truth.high[b];
                }
            }
        }
    }
    table.contexts[0].id = 0;
    table.contexts[0].tile_share = 1.0;
    table.contexts[0].prevalence = cells > 0.0 ? high / cells : 0.0;
    table.contexts[0].description = "all";
    ActionStats direct_stats = accum.finish(
        hw::CostModel::tierParamCount(zoo_->entries[zoo_->reference].tier));
    direct_stats.quantized =
        zoo_->entries[zoo_->reference].runsQuantized();
    table.stats[0].push_back(direct_stats);
    return table;
}

ActionStats
DeploymentEvaluator::measureModelOnTiles(
    int entry, const std::vector<const data::TileData *> &tiles) const
{
    ActionAccum accum;
    // One batch over every tile; same ascending accumulation order as
    // the per-tile loop it replaced — identical bits.
    auto &arena = ml::kernels::scratch();
    ml::kernels::Scratch::Frame scratch_frame(arena);
    const std::size_t rows = tiles.size() * data::kBlocksPerTile;
    double *scaled = arena.alloc(rows * data::kBlockInputDim);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        zoo_->tileInputs(*tiles[t],
                         scaled + t *
                                      std::size_t{data::kBlocksPerTile} *
                                      data::kBlockInputDim);
    }
    double *probs = arena.alloc(rows);
    zoo_->predictRows(entry, scaled, rows, probs);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        const BlockTruth truth(*tiles[t]);
        accum.total_cells += truth.tile_total;
        const double *tile_probs = probs + t * data::kBlocksPerTile;
        for (int b = 0; b < data::kBlocksPerTile; ++b) {
            if (truth.total[b] <= 0.0) {
                continue;
            }
            const double p_cloudy = tile_probs[b];
            if (p_cloudy < 0.5) {
                accum.kept_cells += truth.total[b];
                accum.kept_high_cells += truth.high[b];
                accum.correct_cells += truth.high[b];
            } else {
                accum.correct_cells += truth.total[b] - truth.high[b];
            }
        }
    }
    ActionStats stats = accum.finish(
        hw::CostModel::tierParamCount(zoo_->entries[entry].tier));
    stats.quantized = zoo_->entries[entry].runsQuantized();
    return stats;
}

DeploymentOutcome
evaluateLogic(const SystemProfile &profile, const ContextActionTable &table,
              const std::vector<Action> &per_context,
              bool use_context_engine, bool send_unprocessed_raw,
              bool force_quant_time)
{
    assert(static_cast<int>(per_context.size()) == table.contextCount());

    const double tiles_per_frame =
        static_cast<double>(table.tiles_per_side) * table.tiles_per_side;
    const double tile_bits = profile.frame_bits / tiles_per_frame;
    const double engine_time =
        use_context_engine ? hw::CostModel::contextEngineTime(profile.target)
                           : 0.0;

    struct Pool
    {
        double bits;
        double high;
    };
    std::vector<Pool> pools;
    DeploymentOutcome outcome;
    double share_total = 0.0;

    for (int c = 0; c < table.contextCount(); ++c) {
        const double share = table.contexts[c].tile_share;
        if (share <= 0.0) {
            continue;
        }
        const int idx = table.findAction(c, per_context[c]);
        assert(idx >= 0 && "action not in candidate table");
        const ActionStats &stats = table.stats[c][idx];
        const bool quant_time = stats.quantized || force_quant_time;
        const double action_time =
            per_context[c].kind == ActionKind::RunModel
                ? (quant_time
                       ? hw::CostModel::modelTimeQuant(stats.model_params,
                                                       profile.target)
                       : hw::CostModel::modelTime(stats.model_params,
                                                  profile.target))
                : 0.0;
        outcome.frame_time +=
            share * tiles_per_frame * (engine_time + action_time);
        outcome.cell_accuracy += share * stats.cell_accuracy;
        share_total += share;
        pools.push_back(
            {share * tiles_per_frame * tile_bits * stats.bits_fraction,
             share * tiles_per_frame * tile_bits * stats.high_fraction});
    }
    if (share_total > 0.0) {
        outcome.cell_accuracy /= share_total;
    }

    outcome.processed_fraction =
        outcome.frame_time <= profile.frame_deadline
            ? 1.0
            : profile.frame_deadline / outcome.frame_time;

    // Daily volumes.
    const double processed_frames =
        profile.frames_per_day * outcome.processed_fraction;
    double product_bits = 0.0;
    double product_high = 0.0;
    for (auto &pool : pools) {
        pool.bits *= processed_frames;
        pool.high *= processed_frames;
        product_bits += pool.bits;
        product_high += pool.high;
    }
    outcome.product_precision =
        product_bits > 0.0 ? product_high / product_bits : 1.0;

    if (send_unprocessed_raw) {
        const double raw_frames =
            profile.frames_per_day - processed_frames;
        pools.push_back({raw_frames * profile.frame_bits,
                         raw_frames * profile.frame_bits *
                             profile.prevalence});
    }

    // Drain the saturated downlink, best pools first; the raw pool sorts
    // by its prevalence density like any other.
    std::sort(pools.begin(), pools.end(), [](const Pool &a, const Pool &b) {
        const double da = a.bits > 0.0 ? a.high / a.bits : 0.0;
        const double db = b.bits > 0.0 ? b.high / b.bits : 0.0;
        return da > db;
    });
    double budget = profile.downlink_bits_per_day;
    for (const auto &pool : pools) {
        if (budget <= 0.0 || pool.bits <= 0.0) {
            continue;
        }
        const double sent = std::min(budget, pool.bits);
        outcome.bits_sent += sent;
        outcome.high_bits_sent += pool.high * (sent / pool.bits);
        budget -= sent;
    }
    outcome.dvd = outcome.bits_sent > 0.0
                      ? outcome.high_bits_sent / outcome.bits_sent
                      : 0.0;
    const double observed_high =
        profile.frames_per_day * profile.frame_bits * profile.prevalence;
    outcome.high_value_yield =
        observed_high > 0.0 ? outcome.high_bits_sent / observed_high : 0.0;
    return outcome;
}

DeploymentOutcome
bentPipeOutcome(const SystemProfile &profile)
{
    DeploymentOutcome outcome;
    outcome.frame_time = 0.0;
    outcome.processed_fraction = 0.0;
    const double observed = profile.frames_per_day * profile.frame_bits;
    outcome.bits_sent = std::min(profile.downlink_bits_per_day, observed);
    outcome.high_bits_sent = outcome.bits_sent * profile.prevalence;
    outcome.dvd = profile.prevalence;
    outcome.product_precision = profile.prevalence;
    outcome.cell_accuracy = profile.prevalence;
    outcome.high_value_yield =
        observed > 0.0 ? outcome.bits_sent / observed : 0.0;
    return outcome;
}

} // namespace kodan::core
