/**
 * @file
 * Selection logic (paper Section 3.4): the per-deployment policy mapping
 * each context to an action, plus the sweep that produces it.
 *
 * The one-time transformation step sweeps frame tile count and
 * per-context elision/model choices and keeps the combination
 * maximizing the projected data value density of the saturated downlink.
 */

#ifndef KODAN_CORE_SELECTION_HPP
#define KODAN_CORE_SELECTION_HPP

#include <vector>

#include "core/evaluate.hpp"
#include "core/types.hpp"

namespace kodan::core {

/** The deployable policy produced by the transformation step. */
struct SelectionLogic
{
    /** Tiles per frame side. */
    int tiles_per_side = 6;
    /** Action per context id. */
    std::vector<Action> per_context;
};

/** Sweep configuration. */
struct SweepOptions
{
    /** Tile counts (per frame) to sweep; paper uses {121, 36, 16, 9}. */
    std::vector<int> tile_counts = {121, 36, 16, 9};
    /** Permit Discard/Downlink elision actions. */
    bool allow_elision = true;
    /** Permit specialized models (false = reference model only). */
    bool allow_specialization = true;
    /** Queue raw unprocessed frames behind products. */
    bool send_unprocessed_raw = true;
    /** Max exhaustive combinations before falling back to coordinate
     *  ascent. */
    std::size_t max_enumeration = 2000000;
};

/** Outcome of the sweep. */
struct SweepResult
{
    /** Best policy found. */
    SelectionLogic logic;
    /** Its projected outcome. */
    DeploymentOutcome outcome;
    /** Best outcome found at each swept tiling (diagnostics). */
    std::vector<std::pair<int, DeploymentOutcome>> per_tiling;
};

/**
 * Sweeps tile count and per-context actions to maximize DVD.
 */
class SelectionOptimizer
{
  public:
    explicit SelectionOptimizer(const SweepOptions &options = {});

    /**
     * Optimize over a set of measured tables (one per tiling).
     *
     * @param profile Target system.
     * @param tables One ContextActionTable per candidate tiling; the
     *        tiling is read from each table.
     */
    SweepResult optimize(const SystemProfile &profile,
                         const std::vector<ContextActionTable> &tables)
        const;

    /**
     * Best per-context action assignment for one table.
     *
     * Exhaustive when the combination count is tractable, otherwise
     * coordinate ascent from a greedy start.
     */
    std::pair<std::vector<Action>, DeploymentOutcome> optimizeAtTiling(
        const SystemProfile &profile,
        const ContextActionTable &table) const;

  private:
    SweepOptions options_;

    /** Candidate indices allowed by the options for a context. */
    std::vector<int> allowedCandidates(const ContextActionTable &table,
                                       int context) const;
};

} // namespace kodan::core

#endif // KODAN_CORE_SELECTION_HPP
