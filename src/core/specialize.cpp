#include "core/specialize.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace kodan::core {

namespace {

/** Flat list of (tile index, block index) training rows. */
struct BlockRef
{
    std::size_t tile;
    int block;
};

/** Collect (and optionally subsample) block references. */
std::vector<BlockRef>
collectBlocks(const std::vector<data::TileData> &tiles,
              const std::vector<int> &contexts, int wanted_context,
              std::size_t cap, util::Rng &rng)
{
    std::vector<BlockRef> refs;
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (wanted_context >= 0 && contexts[i] != wanted_context) {
            continue;
        }
        for (int b = 0; b < data::kBlocksPerTile; ++b) {
            refs.push_back({i, b});
        }
    }
    if (refs.size() > cap) {
        const auto perm = rng.permutation(refs.size());
        std::vector<BlockRef> sampled;
        sampled.reserve(cap);
        for (std::size_t i = 0; i < cap; ++i) {
            sampled.push_back(refs[perm[i]]);
        }
        refs.swap(sampled);
    }
    return refs;
}

ml::MlpConfig
tierConfig(int tier)
{
    Application app{tier};
    return app.surrogateConfig();
}

/**
 * Append a jittered copy of every row (visual channels only): the
 * augmentation of paper Section 4.
 */
void
augment(ml::Matrix &x, std::vector<double> &y, double sigma,
        util::Rng &rng)
{
    if (sigma <= 0.0) {
        return;
    }
    const std::size_t n = x.rows();
    ml::Matrix augmented(2 * n, x.cols());
    std::vector<double> targets(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const double *src = x.row(i);
        double *clean = augmented.row(i);
        double *noisy = augmented.row(n + i);
        for (std::size_t d = 0; d < x.cols(); ++d) {
            clean[d] = src[d];
            noisy[d] = d < data::kVisualDim
                           ? src[d] + rng.normal(0.0, sigma)
                           : src[d];
        }
        targets[i] = y[i];
        targets[n + i] = y[i];
    }
    x = std::move(augmented);
    y = std::move(targets);
}

} // namespace

double
SpecializedZoo::predictBlock(int entry, const data::TileData &tile,
                             int block) const
{
    assert(entry >= 0 && entry < static_cast<int>(entries.size()));
    std::array<double, data::kBlockInputDim> input{};
    tile.blockInput(block, input.data());
    scaler.transformRow(input.data());
    const ZooEntry &e = entries[entry];
    return e.runsQuantized() ? e.quant->predictProb(input.data())
                             : e.net.predictProb(input.data());
}

void
SpecializedZoo::tileInputs(const data::TileData &tile, double *out) const
{
    for (int b = 0; b < data::kBlocksPerTile; ++b) {
        double *row = out + static_cast<std::size_t>(b) *
                                data::kBlockInputDim;
        tile.blockInput(b, row);
        scaler.transformRow(row);
    }
}

void
SpecializedZoo::predictRows(int entry, const double *scaled,
                            std::size_t rows, double *out) const
{
    assert(entry >= 0 && entry < static_cast<int>(entries.size()));
    // The precision dispatch choke point: the batch runtime
    // (Runtime::stageInferTile), the pipeline's burst infer stage, and
    // the sweep's table measurement all funnel through here, so the
    // KODAN_QUANT knob redirects every consumer at once.
    const ZooEntry &e = entries[entry];
    if (e.runsQuantized()) {
        e.quant->forwardBatch(scaled, rows, out);
        return;
    }
    e.net.forwardBatch(scaled, rows, out);
}

std::vector<int>
SpecializedZoo::candidatesFor(int context) const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].context == context || entries[i].context == -1) {
            out.push_back(static_cast<int>(i));
        }
    }
    return out;
}

ModelSpecializer::ModelSpecializer(const Application &app,
                                   const SpecializeOptions &options)
    : app_(app), options_(options)
{
    assert(app.tier >= 1 && app.tier <= hw::kAppCount);
}

SpecializedZoo
ModelSpecializer::trainZoo(
    const std::vector<data::TileData> &tiles,
    const std::vector<int> &contexts, int context_count, util::Rng &rng,
    const std::vector<data::TileData> *legacy_tiles) const
{
    assert(tiles.size() == contexts.size());
    assert(context_count >= 1);

    SpecializedZoo zoo;

    // ---- Reference model: the app architecture trained on its original
    // corpus (the legacy domain when provided, otherwise the
    // representative dataset), truth labels.
    const std::vector<data::TileData> &ref_corpus =
        legacy_tiles != nullptr && !legacy_tiles->empty() ? *legacy_tiles
                                                          : tiles;
    const std::vector<int> no_filter(ref_corpus.size(), -1);
    auto ref_refs = collectBlocks(ref_corpus, no_filter, -1,
                                  options_.max_train_blocks, rng);
    assert(!ref_refs.empty());

    ml::Matrix x(ref_refs.size(), data::kBlockInputDim);
    std::vector<double> y(ref_refs.size());
    for (std::size_t i = 0; i < ref_refs.size(); ++i) {
        ref_corpus[ref_refs[i].tile].blockInput(ref_refs[i].block,
                                                x.row(i));
        y[i] = ref_corpus[ref_refs[i].tile]
                   .block_cloud_fraction[ref_refs[i].block];
    }
    // The scaler is part of the deployed application: it is fit on the
    // (un-augmented) reference corpus, exactly like the normalization
    // constants shipped with a pretrained network.
    zoo.scaler.fit(x);
    augment(x, y, options_.augment_noise, rng);
    const ml::Matrix x_scaled = zoo.scaler.transform(x);

    {
        ml::Mlp net(tierConfig(app_.tier), rng);
        net.train(x_scaled, y, options_.train, rng);
        zoo.entries.push_back(ZooEntry{std::move(net), app_.tier, -1});
        if (options_.quantize) {
            // Calibrated offline on the sweep's own training batch —
            // the rows the deployed model will see are drawn from the
            // same standardized distribution.
            zoo.entries.back().quant =
                std::make_shared<ml::QuantizedMlp>(
                    ml::QuantizedMlp::fromCalibration(
                        zoo.entries.back().net, x_scaled.data().data(),
                        x_scaled.rows()));
        }
    }
    zoo.reference = 0;

    // ---- Specialized candidates: tiers {1, ceil(app/2), app}, dedup.
    std::vector<int> candidate_tiers = {1, (app_.tier + 1) / 2, app_.tier};
    std::sort(candidate_tiers.begin(), candidate_tiers.end());
    candidate_tiers.erase(
        std::unique(candidate_tiers.begin(), candidate_tiers.end()),
        candidate_tiers.end());

    const std::size_t per_context_cap =
        std::max<std::size_t>(1024, options_.max_train_blocks /
                                        static_cast<std::size_t>(
                                            context_count));

    for (int c = 0; c < context_count; ++c) {
        auto refs = collectBlocks(tiles, contexts, c, per_context_cap, rng);
        if (refs.size() < 64) {
            continue; // too little data to specialize for this context
        }
        ml::Matrix cx(refs.size(), data::kBlockInputDim);
        std::vector<double> cy(refs.size());
        for (std::size_t i = 0; i < refs.size(); ++i) {
            const auto &tile = tiles[refs[i].tile];
            tile.blockInput(refs[i].block, cx.row(i));
        }
        {
            const ml::Matrix clean_scaled = zoo.scaler.transform(cx);
            if (options_.labels_from_reference) {
                // The deployed reference application labels the data —
                // one batched forward pass over every candidate row.
                zoo.entries[zoo.reference].net.forwardBatch(
                    clean_scaled.data().data(), refs.size(), cy.data());
            } else {
                for (std::size_t i = 0; i < refs.size(); ++i) {
                    const auto &tile = tiles[refs[i].tile];
                    cy[i] = tile.block_cloud_fraction[refs[i].block];
                }
            }
        }
        augment(cx, cy, options_.augment_noise, rng);
        const ml::Matrix cx_scaled = zoo.scaler.transform(cx);
        for (int tier : candidate_tiers) {
            ml::Mlp net(tierConfig(tier), rng);
            net.train(cx_scaled, cy, options_.train, rng);
            zoo.entries.push_back(ZooEntry{std::move(net), tier, c});
            if (options_.quantize) {
                zoo.entries.back().quant =
                    std::make_shared<ml::QuantizedMlp>(
                        ml::QuantizedMlp::fromCalibration(
                            zoo.entries.back().net,
                            cx_scaled.data().data(), cx_scaled.rows()));
            }
        }
    }
    return zoo;
}

} // namespace kodan::core
