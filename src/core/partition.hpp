/**
 * @file
 * Context generation: partitioning the representative dataset into
 * geospatial contexts (paper Section 3.2).
 *
 * Two strategies are provided, as in the paper: automatic clustering of
 * truth label vectors (k-means with a sweep over cluster count, distance
 * metric, and optional PCA transform) and expert partitioning by
 * dominant terrain class.
 */

#ifndef KODAN_CORE_PARTITION_HPP
#define KODAN_CORE_PARTITION_HPP

#include <vector>

#include "core/types.hpp"
#include "data/tiler.hpp"
#include "ml/kmeans.hpp"
#include "ml/transforms.hpp"
#include "util/rng.hpp"

namespace kodan::core {

/** A fitted context partition. */
struct Partition
{
    /** Number of contexts. */
    int context_count = 0;
    /** Context assignment of each input tile. */
    std::vector<int> assignment;
    /** Chosen clustering (empty for expert partitions). */
    ml::KMeansResult clustering;
    /** Standardizer applied to label vectors before clustering. */
    ml::Standardizer scaler;
    /** PCA projection applied after standardization (optional). */
    ml::Pca pca;
    /** True when the PCA transform is part of the pipeline. */
    bool use_pca = false;
    /** Validity (mean silhouette) of the chosen clustering. */
    double silhouette = 0.0;
    /** Chosen metric. */
    ml::Distance metric = ml::Distance::Euclidean;
    /** True when this is an expert (terrain-based) partition. */
    bool expert = false;

    /**
     * Context of a new tile from its truth label vector (used when
     * building training targets for the context engine).
     */
    int assignTile(const data::TileData &tile) const;
};

/** Sweep configuration for automatic context generation. */
struct PartitionOptions
{
    /** Candidate cluster counts. */
    std::vector<int> k_candidates = {3, 4, 5, 6};
    /** Candidate metrics. */
    std::vector<ml::Distance> metrics = {ml::Distance::Euclidean,
                                         ml::Distance::Cosine};
    /** Restarts per candidate. */
    int restarts = 3;
    /**
     * Also try clustering in a PCA projection of the label vectors (the
     * paper's "rotations and projections based on per-dimension
     * covariance properties"); kept when it improves the silhouette.
     * Off by default to mirror the paper's main configuration — the
     * projection candidates typically win the silhouette sweep and
     * nudge the headline DVD up a point or two.
     */
    bool sweep_pca = false;
    /** Components kept by the PCA candidate. */
    int pca_components = 4;
};

/**
 * Builds context partitions from representative tiles.
 */
class ContextPartitioner
{
  public:
    explicit ContextPartitioner(const PartitionOptions &options = {});

    /**
     * Automatic partition: sweep (k, metric) over standardized label
     * vectors and keep the best silhouette.
     *
     * @param tiles Representative tiles (label vectors must be filled).
     * @param rng Clustering randomness.
     */
    Partition fitAuto(const std::vector<data::TileData> &tiles,
                      util::Rng &rng) const;

    /**
     * Expert partition: one context per dominant terrain class (the
     * subject-matter-expert strategy — ocean vs land vs ice ...).
     */
    Partition fitExpert(const std::vector<data::TileData> &tiles) const;

  private:
    PartitionOptions options_;
};

/**
 * Summarize contexts (share, prevalence, dominant terrain) given tiles
 * and their context assignment.
 *
 * @param tiles Tiles used to measure the statistics.
 * @param assignment Context id per tile.
 * @param context_count Number of contexts.
 */
std::vector<ContextInfo> summarizeContexts(
    const std::vector<data::TileData> &tiles,
    const std::vector<int> &assignment, int context_count);

} // namespace kodan::core

#endif // KODAN_CORE_PARTITION_HPP
