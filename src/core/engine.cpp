#include "core/engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <istream>
#include <ostream>
#include <string>

#include "ml/kernels.hpp"

namespace kodan::core {

namespace {

ml::MlpConfig
engineConfig(int context_count)
{
    ml::MlpConfig config;
    config.input_dim = ContextEngine::kInputDim;
    config.hidden = {24, 16};
    config.output_dim = context_count;
    config.output = ml::OutputKind::Softmax;
    return config;
}

void
rawInput(const data::TileData &tile, double *out)
{
    for (int ch = 0; ch < data::kFeatureDim; ++ch) {
        out[ch] = tile.feature_mean[ch];
        out[data::kFeatureDim + ch] = tile.feature_std[ch];
    }
}

} // namespace

ContextEngine::ContextEngine(const std::vector<data::TileData> &tiles,
                             const Partition &partition, util::Rng &rng)
    : context_count_(partition.context_count),
      net_(engineConfig(partition.context_count), rng)
{
    assert(!tiles.empty());
    assert(tiles.size() == partition.assignment.size());

    ml::Matrix x(tiles.size(), kInputDim);
    std::vector<double> targets(tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        rawInput(tiles[i], x.row(i));
        targets[i] = static_cast<double>(partition.assignment[i]);
    }
    scaler_.fit(x);
    const ml::Matrix scaled = scaler_.transform(x);

    ml::TrainOptions options;
    options.epochs = 8;
    options.batch_size = 64;
    options.learning_rate = 3.0e-3;
    net_.train(scaled, targets, options, rng);
}

void
ContextEngine::tileInput(const data::TileData &tile, double *out) const
{
    rawInput(tile, out);
    scaler_.transformRow(out);
}

int
ContextEngine::classify(const data::TileData &tile) const
{
    std::array<double, kInputDim> input{};
    tileInput(tile, input.data());
    return net_.predictClass(input.data());
}

void
ContextEngine::classifyBatch(const std::vector<data::TileData> &tiles,
                             std::vector<int> &out) const
{
    const std::size_t n = tiles.size();
    out.resize(n);
    if (n == 0) {
        return;
    }
    auto &arena = ml::kernels::scratch();
    ml::kernels::Scratch::Frame frame(arena);
    double *inputs = arena.alloc(n * kInputDim);
    for (std::size_t i = 0; i < n; ++i) {
        tileInput(tiles[i], inputs + i * kInputDim);
    }
    const auto classes = static_cast<std::size_t>(context_count_);
    double *probs = arena.alloc(n * classes);
    net_.forwardBatch(inputs, n, probs);
    for (std::size_t i = 0; i < n; ++i) {
        const double *row = probs + i * classes;
        // First-of-equals argmax, the same rule as predictClass.
        out[i] = static_cast<int>(std::max_element(row, row + classes) -
                                  row);
    }
}

ContextEngine::ContextEngine(int context_count, ml::Standardizer scaler,
                             ml::Mlp net)
    : context_count_(context_count), scaler_(std::move(scaler)),
      net_(std::move(net))
{
}

void
ContextEngine::save(std::ostream &os) const
{
    os << "context-engine " << context_count_ << '\n';
    scaler_.save(os);
    net_.save(os);
}

ContextEngine
ContextEngine::load(std::istream &is)
{
    std::string tag;
    int context_count = 0;
    is >> tag >> context_count;
    ml::Standardizer scaler = ml::Standardizer::load(is);
    ml::Mlp net = ml::Mlp::load(is);
    return ContextEngine(context_count, std::move(scaler),
                         std::move(net));
}

double
ContextEngine::agreement(const std::vector<data::TileData> &tiles,
                         const Partition &partition) const
{
    if (tiles.empty()) {
        return 0.0;
    }
    std::size_t correct = 0;
    for (const auto &tile : tiles) {
        if (classify(tile) == partition.assignTile(tile)) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / tiles.size();
}

} // namespace kodan::core
