/**
 * @file
 * The context engine: a small classifier that labels each tile with its
 * geospatial context at runtime, from observed features only.
 *
 * Per the paper, the deployed engine's output is treated as ground truth
 * downstream: specialized models are trained and evaluated on the
 * engine's partition of the data, not the clustering's.
 */

#ifndef KODAN_CORE_ENGINE_HPP
#define KODAN_CORE_ENGINE_HPP

#include <iosfwd>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "data/tiler.hpp"
#include "ml/mlp.hpp"
#include "ml/transforms.hpp"
#include "util/rng.hpp"

namespace kodan::core {

/**
 * Feature-space context classifier (tile statistics -> context id).
 */
class ContextEngine
{
  public:
    /**
     * Train an engine to imitate @p partition on @p tiles.
     *
     * @param tiles Representative tiles.
     * @param partition Context partition supplying training targets.
     * @param rng Initialization/shuffling randomness.
     */
    ContextEngine(const std::vector<data::TileData> &tiles,
                  const Partition &partition, util::Rng &rng);

    /** Number of contexts. */
    int contextCount() const { return context_count_; }

    /** Classify one tile from its observed feature statistics. */
    int classify(const data::TileData &tile) const;

    /**
     * Classify every tile of a batch with one batched forward pass
     * (bit-identical to calling classify per tile).
     * @param tiles Tiles to classify.
     * @param out Resized to tiles.size(); context id per tile.
     */
    void classifyBatch(const std::vector<data::TileData> &tiles,
                       std::vector<int> &out) const;

    /**
     * Agreement with the partition's truth-label assignment on a tile
     * set (the engine's training accuracy proxy).
     */
    double agreement(const std::vector<data::TileData> &tiles,
                     const Partition &partition) const;

    /** Input dimension of the engine (tile mean + std channels). */
    static constexpr int kInputDim = 2 * data::kFeatureDim;

    /** Serialize the trained engine (classifier + scaler). */
    void save(std::ostream &os) const;

    /** Deserialize an engine written by save(). */
    static ContextEngine load(std::istream &is);

  private:
    int context_count_;
    ml::Standardizer scaler_;
    ml::Mlp net_;

    /** Component constructor used by load(). */
    ContextEngine(int context_count, ml::Standardizer scaler, ml::Mlp net);

    /** Assemble and standardize the engine input for one tile. */
    void tileInput(const data::TileData &tile, double *out) const;
};

} // namespace kodan::core

#endif // KODAN_CORE_ENGINE_HPP
