/**
 * @file
 * Model specialization (paper Section 3.3): training the zoo of
 * context-specialized filtering networks for one application.
 *
 * The reference application (the tier's surrogate network trained on the
 * whole representative dataset) generates training labels; specialized
 * candidates — smaller and same-size architectures trained per context —
 * learn from those labels, exactly as the paper's one-time
 * transformation step does.
 */

#ifndef KODAN_CORE_SPECIALIZE_HPP
#define KODAN_CORE_SPECIALIZE_HPP

#include <vector>

#include "core/types.hpp"
#include "data/tiler.hpp"
#include "ml/mlp.hpp"
#include "ml/transforms.hpp"
#include "util/rng.hpp"

namespace kodan::core {

/** The trained model zoo of one application. */
struct SpecializedZoo
{
    /** Shared input standardizer (fit on the reference training set). */
    ml::Standardizer scaler;
    /** Trained networks (reference first, then specialized candidates). */
    std::vector<ZooEntry> entries;
    /** Index of the global reference model in @c entries. */
    int reference = 0;

    /**
     * Predicted cloud probability of one block of a tile.
     *
     * @param entry Zoo entry index.
     * @param tile Tile holding the block.
     * @param block Block index in [0, kBlocksPerTile).
     * @return P(block is cloudy / low-value) in [0, 1].
     */
    double predictBlock(int entry, const data::TileData &tile,
                        int block) const;

    /**
     * Standardized model inputs of all kBlocksPerTile blocks of a tile,
     * ready for predictRows. Computed once per tile, the batch is shared
     * by every candidate model evaluated on it.
     *
     * @param tile Tile to featurize.
     * @param out Row-major kBlocksPerTile x kBlockInputDim buffer.
     */
    void tileInputs(const data::TileData &tile, double *out) const;

    /**
     * Batched predictBlock over pre-standardized input rows (as filled
     * by tileInputs); bit-identical to per-block predictBlock calls.
     *
     * @param entry Zoo entry index.
     * @param scaled Row-major rows x kBlockInputDim standardized inputs.
     * @param rows Number of input rows.
     * @param out One cloud probability per row.
     */
    void predictRows(int entry, const double *scaled, std::size_t rows,
                     double *out) const;

    /** Candidate entry indices usable for context @p context. */
    std::vector<int> candidatesFor(int context) const;
};

/** Hyperparameters of zoo training. */
struct SpecializeOptions
{
    /**
     * Train specialized models on reference-model pseudo-labels instead
     * of the dataset's truth masks. The paper's general framework uses
     * reference labels (Section 3.3); its evaluation applications are
     * trained on the Sentinel catalogue's truth masks (Section 4), which
     * is the default here.
     */
    bool labels_from_reference = false;
    /** Cap on training blocks (subsampled uniformly). */
    std::size_t max_train_blocks = 30000;
    /**
     * Data-augmentation jitter: each training row is duplicated with
     * Gaussian noise of this sigma added to its visual channels
     * (paper Section 4: "we apply data augmentation to improve accuracy
     * and avoid over-fitting"). 0 disables augmentation.
     */
    double augment_noise = 0.03;
    /** Optimizer settings shared by all trainings. */
    ml::TrainOptions train{};
    /**
     * Build a calibrated int8 sibling for every trained entry
     * (calibration batch = the entry's own training rows). The siblings
     * are dormant until the process-wide precision knob (KODAN_QUANT /
     * ml::setPrecision) selects Int8; see ZooEntry::runsQuantized.
     */
    bool quantize = true;
    /**
     * Tolerance gate on quantized candidates (applied by the sweep,
     * Transformer::transformApp): a sibling whose validation cell
     * accuracy drops by more than this absolute amount versus the fp64
     * model is rejected (entry falls back to fp64 even under Int8).
     */
    double quant_max_accuracy_drop = 0.01;
    /**
     * Companion gate on the DVD inputs: max absolute drop in the
     * measured high-value product fraction (high_fraction) of the
     * entry's validation stats.
     */
    double quant_max_value_drop = 0.01;
    /**
     * Cap on the validation tiles each sibling's A/B gate measurement
     * runs over (a deterministic stride subsample when the validation
     * set is larger). Keeps the gate a small fraction of transformApp;
     * 0 means measure every tile.
     */
    std::size_t quant_gate_max_tiles = 512;
};

/**
 * Trains the zoo for one application.
 */
class ModelSpecializer
{
  public:
    /**
     * @param app Application whose reference architecture tops the zoo.
     * @param options Training hyperparameters.
     */
    ModelSpecializer(const Application &app,
                     const SpecializeOptions &options = {});

    /**
     * Train the reference model and per-context specialized candidates.
     *
     * Candidate architectures per context are tiers {1, ceil(app/2),
     * app} (deduplicated) — Kodan may replace a heavy legacy model with
     * a smaller specialized one, never a larger one.
     *
     * @param tiles Training tiles at the reference tiling.
     * @param contexts Context id per tile (the deployed engine's output,
     *        which the paper treats as ground truth).
     * @param context_count Number of contexts.
     * @param rng Training randomness.
     * @param legacy_tiles When non-null, the reference model trains on
     *        these tiles instead of @p tiles — modelling a legacy
     *        datacenter application built on an out-of-domain corpus
     *        (different sensor calibration and cloud climate). The
     *        specialized models always train on @p tiles, which is what
     *        gives context specialization its accuracy/precision edge.
     */
    SpecializedZoo trainZoo(
        const std::vector<data::TileData> &tiles,
        const std::vector<int> &contexts, int context_count,
        util::Rng &rng,
        const std::vector<data::TileData> *legacy_tiles = nullptr) const;

    /** The application this specializer serves. */
    const Application &application() const { return app_; }

  private:
    Application app_;
    SpecializeOptions options_;
};

} // namespace kodan::core

#endif // KODAN_CORE_SPECIALIZE_HPP
