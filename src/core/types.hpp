/**
 * @file
 * Core vocabulary types of the Kodan system: applications, contexts,
 * per-context actions, and measured action statistics.
 */

#ifndef KODAN_CORE_TYPES_HPP
#define KODAN_CORE_TYPES_HPP

#include <memory>
#include <string>
#include <vector>

#include "data/tiler.hpp"
#include "hw/target.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"

namespace kodan::core {

/**
 * A geospatial analysis application: one of the seven reference
 * pixel-segmentation networks of Table 1, identified by its tier.
 */
struct Application
{
    /** Tier in [1, 7]; higher tiers are costlier and more capable. */
    int tier = 1;

    /** Paper architecture name. */
    const char *name() const { return hw::CostModel::tierName(tier); }

    /**
     * Surrogate network architecture for this tier: a per-block binary
     * classifier over the decimated tile representation.
     */
    ml::MlpConfig surrogateConfig() const;

    /** All seven applications. */
    static std::vector<Application> all();
};

/** What the runtime does with tiles of a given context. */
enum class ActionKind
{
    /** Drop the tile without further processing (low-value context). */
    Discard,
    /** Downlink the raw tile without filtering (high-value context). */
    Downlink,
    /** Run a (possibly specialized) filtering model. */
    RunModel,
};

/** Human-readable action-kind name. */
const char *actionKindName(ActionKind kind);

/** A per-context decision in the selection logic. */
struct Action
{
    ActionKind kind = ActionKind::RunModel;
    /** Index into the model zoo; only meaningful for RunModel. */
    int model = -1;

    bool operator==(const Action &o) const = default;
};

/** Descriptive statistics of one context on the validation set. */
struct ContextInfo
{
    /** Context id in [0, context count). */
    int id = 0;
    /** Fraction of tiles the engine assigns to this context. */
    double tile_share = 0.0;
    /** High-value cell fraction among this context's tiles. */
    double prevalence = 0.0;
    /** Dominant truth terrain among this context's tiles. */
    std::string description;
};

/**
 * Measured outcome of applying one action to the tiles of one context at
 * one tiling, normalized per tile bit. All fractions are of the tile's
 * raw bits.
 */
struct ActionStats
{
    /** Product bits emitted / raw tile bits (keep rate). */
    double bits_fraction = 0.0;
    /** Truly high-value product bits / raw tile bits. */
    double high_fraction = 0.0;
    /** Fraction of the tile's cells labeled correctly. */
    double cell_accuracy = 0.0;
    /** Parameter count of the model run (0 for Discard/Downlink). */
    std::size_t model_params = 0;
    /**
     * The stats were measured through the int8 quantized sibling; the
     * projection then charges the quantized per-tile time instead of
     * the fp64 one.
     */
    bool quantized = false;

    /** Value density of the emitted product (1 when nothing emitted). */
    double density() const
    {
        return bits_fraction <= 0.0 ? 1.0 : high_fraction / bits_fraction;
    }
};

/** One network in the specialized-model zoo. */
struct ZooEntry
{
    /** The trained network. */
    ml::Mlp net;
    /** Architecture tier used for execution-time costing. */
    int tier = 1;
    /** Context this model is specialized for; -1 = global (reference). */
    int context = -1;
    /**
     * Calibrated int8 sibling of @c net; null when quantization is
     * disabled for the zoo or the sibling was rejected by the sweep's
     * accuracy/value tolerance gate. Shared so copied zoos (deployment
     * packages, evaluator snapshots) reuse the packed weights.
     */
    std::shared_ptr<const ml::QuantizedMlp> quant;

    /** True when predict calls take the int8 path right now: a sibling
     *  exists and the process-wide precision knob selects Int8. */
    bool runsQuantized() const
    {
        return quant != nullptr && ml::precision() == ml::Precision::Int8;
    }
};

} // namespace kodan::core

#endif // KODAN_CORE_TYPES_HPP
