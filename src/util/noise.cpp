#include "util/noise.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace kodan::util {

namespace {

/** Quintic smoothstep: C2-continuous interpolation weight. */
double
smooth(double t)
{
    return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

} // namespace

ValueNoise::ValueNoise(std::uint64_t seed)
    : seed_(seed)
{
}

double
ValueNoise::cellValue(std::int64_t ix, std::int64_t iy, std::int64_t iz) const
{
    std::uint64_t h = seed_;
    h = splitMix64(h ^ static_cast<std::uint64_t>(ix) * 0x8da6b343ULL);
    h = splitMix64(h ^ static_cast<std::uint64_t>(iy) * 0xd8163841ULL);
    h = splitMix64(h ^ static_cast<std::uint64_t>(iz) * 0xcb1ab31fULL);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double
ValueNoise::at(double x, double y, double z) const
{
    const double fx = std::floor(x);
    const double fy = std::floor(y);
    const double fz = std::floor(z);
    const auto ix = static_cast<std::int64_t>(fx);
    const auto iy = static_cast<std::int64_t>(fy);
    const auto iz = static_cast<std::int64_t>(fz);
    const double tx = smooth(x - fx);
    const double ty = smooth(y - fy);
    const double tz = smooth(z - fz);

    double corner[2][2][2];
    for (int dx = 0; dx < 2; ++dx) {
        for (int dy = 0; dy < 2; ++dy) {
            for (int dz = 0; dz < 2; ++dz) {
                corner[dx][dy][dz] = cellValue(ix + dx, iy + dy, iz + dz);
            }
        }
    }
    const double x00 = lerp(corner[0][0][0], corner[1][0][0], tx);
    const double x10 = lerp(corner[0][1][0], corner[1][1][0], tx);
    const double x01 = lerp(corner[0][0][1], corner[1][0][1], tx);
    const double x11 = lerp(corner[0][1][1], corner[1][1][1], tx);
    const double y0 = lerp(x00, x10, ty);
    const double y1 = lerp(x01, x11, ty);
    return lerp(y0, y1, tz);
}

FbmNoise::FbmNoise(std::uint64_t seed, int octaves, double lacunarity,
                   double gain)
    : base_(seed), octaves_(octaves), lacunarity_(lacunarity), gain_(gain)
{
    assert(octaves >= 1);
    double amplitude = 1.0;
    double total = 0.0;
    for (int i = 0; i < octaves_; ++i) {
        total += amplitude;
        amplitude *= gain_;
    }
    norm_ = 1.0 / total;
}

double
FbmNoise::at(double x, double y, double z) const
{
    double sum = 0.0;
    double amplitude = 1.0;
    double frequency = 1.0;
    for (int i = 0; i < octaves_; ++i) {
        // Offset each octave so features of different scales decorrelate.
        const double offset = 31.416 * i;
        sum += amplitude * base_.at(x * frequency + offset,
                                    y * frequency + offset,
                                    z * frequency);
        amplitude *= gain_;
        frequency *= lacunarity_;
    }
    return sum * norm_;
}

SphericalFbm::SphericalFbm(std::uint64_t seed, int octaves, double frequency)
    : fbm_(seed, octaves), frequency_(frequency)
{
}

double
SphericalFbm::at(double lat_rad, double lon_rad, double time) const
{
    const double cos_lat = std::cos(lat_rad);
    const double x = cos_lat * std::cos(lon_rad);
    const double y = cos_lat * std::sin(lon_rad);
    const double z = std::sin(lat_rad);
    // Embed on the sphere of radius `frequency_` and fold time into all
    // three axes so the field genuinely evolves rather than translating.
    return fbm_.at(x * frequency_ + 0.31 * time,
                   y * frequency_ + 0.47 * time,
                   z * frequency_ + 0.59 * time);
}

} // namespace kodan::util
