/**
 * @file
 * Minimal in-tree JSON reader.
 *
 * Just enough of RFC 8259 for the repo's own machine-readable outputs
 * (metrics snapshots, Chrome traces, journal JSONL, bench run files):
 * objects, arrays, strings with the escapes our writers emit, numbers,
 * booleans, and null. Object members preserve document order, so a
 * parse/serialize round trip can check field ordering. No external
 * dependency — the toolchain image is what it is.
 *
 * Not a validator of exotic inputs: numbers are parsed with strtod
 * (doubles only; integers above 2^53 lose precision), \uXXXX escapes
 * are decoded to UTF-8, and duplicate keys are kept as-is.
 */

#ifndef KODAN_UTIL_JSON_HPP
#define KODAN_UTIL_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace kodan::util::json {

/** One parsed JSON value (a tree; children owned by value). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; reading the wrong kind returns the default. */
    bool asBool() const { return kind_ == Kind::Bool && bool_; }
    double asNumber() const { return kind_ == Kind::Number ? number_ : 0.0; }
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Value> &array() const { return array_; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return members_;
    }

    /** First member named @p key, or nullptr. */
    const Value *find(const std::string &key) const;

    /** Member @p key as a number, or @p fallback when absent/mistyped. */
    double numberOr(const std::string &key, double fallback) const;

    /** Member @p key as a string, or @p fallback when absent/mistyped. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    static Value makeNull() { return Value(); }
    static Value makeBool(bool v);
    static Value makeNumber(double v);
    static Value makeString(std::string v);
    static Value makeArray(std::vector<Value> v);
    static Value makeObject(std::vector<std::pair<std::string, Value>> v);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Parse one JSON document from @p text.
 *
 * @param text The complete document (leading/trailing whitespace ok).
 * @param out Receives the parsed tree on success.
 * @param error When non-null, receives a one-line description with the
 *        byte offset on failure.
 * @return true when the whole text parsed as a single JSON value.
 */
bool parse(const std::string &text, Value &out, std::string *error = nullptr);

/**
 * Parse a JSON-Lines document: one JSON value per non-empty line.
 *
 * @return true when every non-empty line parsed; on failure @p error
 *         (when non-null) names the first offending 1-based line.
 */
bool parseLines(const std::string &text, std::vector<Value> &out,
                std::string *error = nullptr);

} // namespace kodan::util::json

#endif // KODAN_UTIL_JSON_HPP
