/**
 * @file
 * Minimal leveled logging for the library.
 *
 * Follows the gem5 fatal/panic distinction: fatal() is a user/configuration
 * error (clean exit), panic() is an internal invariant violation (abort).
 */

#ifndef KODAN_UTIL_LOG_HPP
#define KODAN_UTIL_LOG_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace kodan::util {

/** Logging verbosity levels, in increasing severity. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/**
 * Destination of emitted log lines. Receives the level and the bare
 * message (no "[kodan LEVEL]" prefix — formatting is the sink's job).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install the sink that receives level-filtered log lines. Passing a
 * null sink uninstalls the current one and restores the default
 * (formatted line to stderr). Tests use this to capture or silence
 * output instead of scraping stderr.
 *
 * Registration contract: at most one sink is installed at a time.
 * Installing a non-null sink while another is active is a double-install
 * — the call is rejected, the active sink is kept, and false is
 * returned. Uninstall (null) always succeeds. Install/uninstall are
 * thread-safe (serialized on an internal mutex) and safe against
 * concurrent emission: a message in flight uses either the old or the
 * new sink, never a torn one.
 *
 * @return true when the sink was installed (or uninstalled).
 */
bool setLogSink(LogSink sink);

/**
 * Secondary observer called for every emitted (post-filter) message in
 * addition to the sink. A plain function pointer so dispatch is
 * race-free; used by kodan::telemetry to mirror Warn+ messages into the
 * event stream. Pass nullptr to remove.
 *
 * Registration contract: at most one tap. Re-installing the *same*
 * function pointer is an idempotent success (the telemetry bridge
 * re-arms on every enable); installing a *different* tap while one is
 * active is rejected with false and keeps the active tap. Uninstall
 * (null) always succeeds. Thread-safe: installation uses a single
 * atomic compare-exchange, so concurrent installers agree on one
 * winner and emission never observes a torn pointer.
 *
 * @return true when the tap was installed (or uninstalled).
 */
using LogTap = void (*)(LogLevel, const std::string &);
bool setLogTap(LogTap tap);

/** Emit one log line at @p level (filtered by the global level). */
void logMessage(LogLevel level, const std::string &message);

/**
 * Per-callsite token-bucket rate limit applied by KODAN_LOG: each
 * macro site owns a bucket of `burst` tokens refilled at
 * `tokens_per_s`; a site that exhausts its bucket drops messages
 * (counted per site, reported by flushLogSuppressed) instead of
 * swamping the run — a thousand-satellite sim can emit the same Warn
 * from one site every chunk without drowning stderr or the telemetry
 * log tap. `burst <= 0` disables limiting. `tokens_per_s = 0` with a
 * positive burst admits exactly `burst` messages per site, which is
 * the deterministic configuration the unit tests use.
 */
struct LogRateLimit
{
    double tokens_per_s = 128.0;
    double burst = 512.0;
};

/** Replace the global rate limit; buckets re-prime to the new burst.
 *  The default (or the KODAN_LOG_RATE env var: "off"/"0" to disable,
 *  "R" or "R:B" to set refill/burst) applies otherwise. */
void setLogRateLimit(double tokens_per_s, double burst);

/** The rate limit in effect (env-resolved on first use). */
LogRateLimit logRateLimit();

/** Messages currently suppressed and not yet reported, all sites. */
std::uint64_t logSuppressedCount();

/**
 * Report and reset the per-site drop counts: one Warn line per site
 * that suppressed messages since the last flush (emitted through the
 * normal sink/tap path, never rate-limited). Telemetry's exit-time
 * writeOutputs() calls this, so runs end with an honest accounting.
 */
void flushLogSuppressed();

namespace detail {

/**
 * One KODAN_LOG call site's token bucket. Function-local static in the
 * macro expansion (never destroyed); registers itself in a global list
 * on first use so flushLogSuppressed can walk every site.
 */
class LogRateSite
{
  public:
    LogRateSite(const char *file, int line);

    /** Take one token; false = drop (counted). */
    bool admit();

    const char *file() const { return file_; }
    int line() const { return line_; }

    /** Return and clear the drop count. */
    std::uint64_t takeDropped()
    {
        return dropped_.exchange(0, std::memory_order_relaxed);
    }

    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    const char *file_;
    int line_;
    std::mutex mutex_;
    double tokens_ = 0.0; // guarded by mutex_
    std::uint64_t epoch_ = 0;
    std::chrono::steady_clock::time_point last_;
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace detail

/**
 * Terminate due to a user-facing configuration error (exit(1)).
 * @param message Explanation printed to stderr.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Terminate due to an internal invariant violation (abort()).
 * @param message Explanation printed to stderr.
 */
[[noreturn]] void panic(const std::string &message);

} // namespace kodan::util

/** Stream-style logging convenience macro. Each expansion owns a
 *  token-bucket rate-limit site (see util::LogRateLimit). */
#define KODAN_LOG(level, expr)                                               \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::kodan::util::logLevel())) {                   \
            static ::kodan::util::detail::LogRateSite kodan_log_site(        \
                __FILE__, __LINE__);                                         \
            if (kodan_log_site.admit()) {                                    \
                std::ostringstream kodan_log_oss;                            \
                kodan_log_oss << expr;                                       \
                ::kodan::util::logMessage(level, kodan_log_oss.str());       \
            }                                                                \
        }                                                                    \
    } while (0)

#endif // KODAN_UTIL_LOG_HPP
