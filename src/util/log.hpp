/**
 * @file
 * Minimal leveled logging for the library.
 *
 * Follows the gem5 fatal/panic distinction: fatal() is a user/configuration
 * error (clean exit), panic() is an internal invariant violation (abort).
 */

#ifndef KODAN_UTIL_LOG_HPP
#define KODAN_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace kodan::util {

/** Logging verbosity levels, in increasing severity. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/** Emit one log line at @p level (filtered by the global level). */
void logMessage(LogLevel level, const std::string &message);

/**
 * Terminate due to a user-facing configuration error (exit(1)).
 * @param message Explanation printed to stderr.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Terminate due to an internal invariant violation (abort()).
 * @param message Explanation printed to stderr.
 */
[[noreturn]] void panic(const std::string &message);

} // namespace kodan::util

/** Stream-style logging convenience macro. */
#define KODAN_LOG(level, expr)                                               \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::kodan::util::logLevel())) {                   \
            std::ostringstream kodan_log_oss;                                \
            kodan_log_oss << expr;                                           \
            ::kodan::util::logMessage(level, kodan_log_oss.str());           \
        }                                                                    \
    } while (0)

#endif // KODAN_UTIL_LOG_HPP
