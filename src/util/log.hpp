/**
 * @file
 * Minimal leveled logging for the library.
 *
 * Follows the gem5 fatal/panic distinction: fatal() is a user/configuration
 * error (clean exit), panic() is an internal invariant violation (abort).
 */

#ifndef KODAN_UTIL_LOG_HPP
#define KODAN_UTIL_LOG_HPP

#include <functional>
#include <sstream>
#include <string>

namespace kodan::util {

/** Logging verbosity levels, in increasing severity. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/**
 * Destination of emitted log lines. Receives the level and the bare
 * message (no "[kodan LEVEL]" prefix — formatting is the sink's job).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install the sink that receives level-filtered log lines. Passing a
 * null sink uninstalls the current one and restores the default
 * (formatted line to stderr). Tests use this to capture or silence
 * output instead of scraping stderr.
 *
 * Registration contract: at most one sink is installed at a time.
 * Installing a non-null sink while another is active is a double-install
 * — the call is rejected, the active sink is kept, and false is
 * returned. Uninstall (null) always succeeds. Install/uninstall are
 * thread-safe (serialized on an internal mutex) and safe against
 * concurrent emission: a message in flight uses either the old or the
 * new sink, never a torn one.
 *
 * @return true when the sink was installed (or uninstalled).
 */
bool setLogSink(LogSink sink);

/**
 * Secondary observer called for every emitted (post-filter) message in
 * addition to the sink. A plain function pointer so dispatch is
 * race-free; used by kodan::telemetry to mirror Warn+ messages into the
 * event stream. Pass nullptr to remove.
 *
 * Registration contract: at most one tap. Re-installing the *same*
 * function pointer is an idempotent success (the telemetry bridge
 * re-arms on every enable); installing a *different* tap while one is
 * active is rejected with false and keeps the active tap. Uninstall
 * (null) always succeeds. Thread-safe: installation uses a single
 * atomic compare-exchange, so concurrent installers agree on one
 * winner and emission never observes a torn pointer.
 *
 * @return true when the tap was installed (or uninstalled).
 */
using LogTap = void (*)(LogLevel, const std::string &);
bool setLogTap(LogTap tap);

/** Emit one log line at @p level (filtered by the global level). */
void logMessage(LogLevel level, const std::string &message);

/**
 * Terminate due to a user-facing configuration error (exit(1)).
 * @param message Explanation printed to stderr.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Terminate due to an internal invariant violation (abort()).
 * @param message Explanation printed to stderr.
 */
[[noreturn]] void panic(const std::string &message);

} // namespace kodan::util

/** Stream-style logging convenience macro. */
#define KODAN_LOG(level, expr)                                               \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::kodan::util::logLevel())) {                   \
            std::ostringstream kodan_log_oss;                                \
            kodan_log_oss << expr;                                           \
            ::kodan::util::logMessage(level, kodan_log_oss.str());           \
        }                                                                    \
    } while (0)

#endif // KODAN_UTIL_LOG_HPP
