/**
 * @file
 * Streaming summary statistics and small numeric helpers.
 */

#ifndef KODAN_UTIL_STATS_HPP
#define KODAN_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace kodan::util {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 *
 * Used throughout simulation and evaluation code to summarize per-frame
 * and per-sample measurements without storing them.
 */
class SummaryStats
{
  public:
    SummaryStats();

    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel-friendly). */
    void merge(const SummaryStats &other);

    /** Number of observations added. */
    std::size_t count() const { return count_; }

    /** Mean of observations; 0 when empty. */
    double mean() const;

    /** Population variance; 0 when fewer than two observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Minimum observation; +inf when empty. */
    double min() const { return min_; }

    /** Maximum observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t count_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

/**
 * Percentile of a sample by linear interpolation.
 *
 * @param values Sample; copied and sorted internally. Must be non-empty.
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/**
 * Relative improvement of @p value over @p baseline, as a fraction.
 *
 * Returns (value - baseline) / baseline. Baseline must be nonzero.
 */
double relativeImprovement(double value, double baseline);

/** Clamp x into [lo, hi]. */
double clamp(double x, double lo, double hi);

} // namespace kodan::util

#endif // KODAN_UTIL_STATS_HPP
