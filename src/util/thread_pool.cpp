#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

namespace kodan::util {

namespace {

std::atomic<void (*)()> g_worker_start_hook{nullptr};

} // namespace

void
setWorkerStartHook(void (*hook)())
{
    g_worker_start_hook.store(hook, std::memory_order_release);
}

namespace detail {

void
runWorkerStartHook()
{
    if (void (*hook)() =
            g_worker_start_hook.load(std::memory_order_acquire)) {
        hook();
    }
}

} // namespace detail

ThreadPool::ThreadPool(int threads)
{
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        workers_.emplace_back([this] {
            detail::runWorkerStartHook();
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stopping_ with a drained queue: exit.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::runBatch(std::size_t count,
                     const std::function<void(std::size_t)> &task)
{
    if (count == 0) {
        return;
    }

    // Shared batch state; tasks may outlive this stack frame only if the
    // caller stops waiting, which cannot happen (we block below), but the
    // shared_ptr keeps the destruction-while-busy path trivially safe.
    struct Batch
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t count;
        const std::function<void(std::size_t)> *task;
        std::mutex mutex;
        std::condition_variable finished;
        std::exception_ptr error;
    };
    auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->task = &task;

    auto drain = [](const std::shared_ptr<Batch> &b) {
        while (true) {
            const std::size_t i =
                b->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= b->count) {
                return;
            }
            try {
                (*b->task)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(b->mutex);
                if (!b->error) {
                    b->error = std::current_exception();
                }
            }
            if (b->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                b->count) {
                std::lock_guard<std::mutex> lock(b->mutex);
                b->finished.notify_all();
            }
        }
    };

    // One helper per worker is enough: each helper loops until the index
    // space is exhausted.
    const std::size_t helpers =
        std::max<std::size_t>(1, std::min(count, workers_.size()));
    for (std::size_t h = 0; h + 1 < helpers; ++h) {
        enqueue([batch, drain] { drain(batch); });
    }
    // The calling thread participates, so progress never depends on pool
    // capacity and nested batches cannot deadlock.
    drain(batch);

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->finished.wait(lock, [&] {
        return batch->done.load(std::memory_order_acquire) ==
               batch->count;
    });
    if (batch->error) {
        std::rethrow_exception(batch->error);
    }
}

namespace {

int
environmentThreads()
{
    if (const char *env = std::getenv("KODAN_THREADS")) {
        try {
            return std::max(1, std::stoi(env));
        } catch (...) {
            // Fall through to hardware concurrency on unparsable values.
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/** Global pool, rebuilt when the requested thread count changes. */
struct GlobalPool
{
    std::mutex mutex;
    int override_threads = 0; // 0 = use environment
    std::unique_ptr<ThreadPool> pool;

    static GlobalPool &instance()
    {
        static GlobalPool global;
        return global;
    }

    int threadCount()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return override_threads > 0 ? override_threads
                                    : environmentThreads();
    }

    ThreadPool &acquire(int threads)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!pool || pool->threadCount() != threads) {
            pool.reset(); // join the old workers first
            pool = std::make_unique<ThreadPool>(threads);
        }
        return *pool;
    }
};

} // namespace

int
globalThreadCount()
{
    return GlobalPool::instance().threadCount();
}

void
setGlobalThreads(int threads)
{
    std::lock_guard<std::mutex> lock(GlobalPool::instance().mutex);
    GlobalPool::instance().override_threads = std::max(0, threads);
}

void
parallelForChunks(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)> &fn,
                  const ParallelOptions &options)
{
    if (n == 0) {
        return;
    }
    const int threads =
        options.threads > 0 ? options.threads : globalThreadCount();
    const std::size_t grain = std::max<std::size_t>(1, options.grain);
    const std::size_t max_chunks = (n + grain - 1) / grain;
    const std::size_t chunks =
        std::min<std::size_t>(static_cast<std::size_t>(threads),
                              max_chunks);
    if (threads <= 1 || chunks <= 1) {
        fn(0, n); // serial fast path, on the caller's stack
        return;
    }
    // Even partition: chunk boundaries depend only on (n, chunks).
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ranges.reserve(chunks);
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t size = base + (c < extra ? 1 : 0);
        ranges.emplace_back(begin, begin + size);
        begin += size;
    }
    GlobalPool::instance().acquire(threads).runBatch(
        ranges.size(), [&](std::size_t c) {
            fn(ranges[c].first, ranges[c].second);
        });
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            const ParallelOptions &options)
{
    parallelForChunks(
        n,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                fn(i);
            }
        },
        options);
}

} // namespace kodan::util
