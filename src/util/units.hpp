/**
 * @file
 * Physical constants and unit-conversion helpers shared across kodan.
 *
 * All internal computation uses SI units (meters, seconds, radians);
 * these helpers exist so call sites can state their units explicitly.
 */

#ifndef KODAN_UTIL_UNITS_HPP
#define KODAN_UTIL_UNITS_HPP

#include <numbers>

namespace kodan::util {

/** Pi, as a double. */
inline constexpr double kPi = std::numbers::pi;

/** Twice pi; one full revolution in radians. */
inline constexpr double kTwoPi = 2.0 * kPi;

/** Standard gravitational parameter of Earth (m^3/s^2), WGS-84. */
inline constexpr double kEarthMu = 3.986004418e14;

/** Mean equatorial radius of Earth (m), WGS-84. */
inline constexpr double kEarthRadius = 6.378137e6;

/** Earth J2 zonal harmonic coefficient (dimensionless). */
inline constexpr double kEarthJ2 = 1.08262668e-3;

/** Earth rotation rate (rad/s), sidereal. */
inline constexpr double kEarthOmega = 7.2921150e-5;

/** Seconds in one solar day. */
inline constexpr double kSecondsPerDay = 86400.0;

/** Seconds in one sidereal day. */
inline constexpr double kSiderealDay = 86164.0905;

/** Convert degrees to radians. */
constexpr double
degToRad(double deg)
{
    return deg * kPi / 180.0;
}

/** Convert radians to degrees. */
constexpr double
radToDeg(double rad)
{
    return rad * 180.0 / kPi;
}

/** Convert kilometers to meters. */
constexpr double
kmToM(double km)
{
    return km * 1000.0;
}

/** Convert meters to kilometers. */
constexpr double
mToKm(double m)
{
    return m / 1000.0;
}

/** Convert minutes to seconds. */
constexpr double
minToS(double min)
{
    return min * 60.0;
}

/** Convert megabits per second to bits per second. */
constexpr double
mbpsToBps(double mbps)
{
    return mbps * 1.0e6;
}

/**
 * Wrap an angle into [0, 2*pi).
 * @param angle Angle in radians; may be any finite value.
 * @return Equivalent angle in [0, 2*pi).
 */
constexpr double
wrapTwoPi(double angle)
{
    double wrapped = angle - kTwoPi * static_cast<long long>(angle / kTwoPi);
    if (wrapped < 0.0) {
        wrapped += kTwoPi;
    }
    return wrapped;
}

/**
 * Wrap an angle into [-pi, pi).
 * @param angle Angle in radians; may be any finite value.
 * @return Equivalent angle in [-pi, pi).
 */
constexpr double
wrapPi(double angle)
{
    double wrapped = wrapTwoPi(angle);
    if (wrapped >= kPi) {
        wrapped -= kTwoPi;
    }
    return wrapped;
}

} // namespace kodan::util

#endif // KODAN_UTIL_UNITS_HPP
