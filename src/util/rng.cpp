#include "util/rng.hpp"

#include <cassert>
#include <cmath>

#include "util/units.hpp"

namespace kodan::util {

std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : spareNormal_(0.0), hasSpareNormal_(false)
{
    std::uint64_t s = seed;
    for (auto &word : state_) {
        s = splitMix64(s);
        word = s;
    }
    // xoshiro must not start in the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
        state_[0] = 0x9e3779b97f4a7c15ULL;
    }
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    assert(hi >= lo);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(hi >= lo);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) { // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = nextU64();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = radius * std::sin(kTwoPi * u2);
    hasSpareNormal_ = true;
    return radius * std::cos(kTwoPi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    assert(stddev >= 0.0);
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    assert(total > 0.0);
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0) {
            return i;
        }
    }
    return weights.size() - 1; // numeric fallback
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    for (std::size_t i = n; i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            uniformInt(0, static_cast<std::int64_t>(i) - 1));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Rng
Rng::split(std::uint64_t stream_id)
{
    return Rng(splitMix64(nextU64() ^ splitMix64(stream_id)));
}

} // namespace kodan::util
