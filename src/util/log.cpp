#include "util/log.hpp"

#include <cstdlib>
#include <iostream>

namespace kodan::util {

namespace {

LogLevel global_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "DEBUG";
      case LogLevel::Info:
        return "INFO";
      case LogLevel::Warn:
        return "WARN";
      case LogLevel::Error:
        return "ERROR";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(global_level)) {
        return;
    }
    std::cerr << "[kodan " << levelName(level) << "] " << message << '\n';
}

void
fatal(const std::string &message)
{
    std::cerr << "[kodan FATAL] " << message << '\n';
    std::exit(1);
}

void
panic(const std::string &message)
{
    std::cerr << "[kodan PANIC] " << message << '\n';
    std::abort();
}

} // namespace kodan::util
