#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <utility>
#include <vector>

namespace kodan::util {

namespace {

LogLevel global_level = LogLevel::Warn;

std::mutex sink_mutex;
LogSink global_sink; // null = default stderr sink (guarded by sink_mutex)
std::atomic<LogTap> global_tap{nullptr};

std::mutex rate_mutex;
LogRateLimit rate_limit;              // guarded by rate_mutex
bool rate_resolved = false;           // guarded by rate_mutex
std::vector<detail::LogRateSite *> rate_sites; // guarded by rate_mutex
/** Bumped on every setLogRateLimit so buckets re-prime (starts at 1 so
 *  a fresh site, whose epoch is 0, primes on first use). */
std::atomic<std::uint64_t> rate_epoch{1};

/** Resolve the limit once: explicit setLogRateLimit wins, then the
 *  KODAN_LOG_RATE env var, then the defaults. */
LogRateLimit
resolveRateLimit()
{
    std::lock_guard<std::mutex> lock(rate_mutex);
    if (!rate_resolved) {
        rate_resolved = true;
        if (const char *env = std::getenv("KODAN_LOG_RATE")) {
            if (std::strcmp(env, "off") == 0 ||
                std::strcmp(env, "0") == 0) {
                rate_limit.tokens_per_s = 0.0;
                rate_limit.burst = 0.0; // burst <= 0 disables
            } else {
                char *end = nullptr;
                const double rate = std::strtod(env, &end);
                if (end != env) {
                    rate_limit.tokens_per_s = rate;
                    rate_limit.burst = 4.0 * rate;
                    if (*end == ':' || *end == ',') {
                        const double burst = std::strtod(end + 1,
                                                         nullptr);
                        if (burst > 0.0) {
                            rate_limit.burst = burst;
                        }
                    }
                }
            }
        }
    }
    return rate_limit;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "DEBUG";
      case LogLevel::Info:
        return "INFO";
      case LogLevel::Warn:
        return "WARN";
      case LogLevel::Error:
        return "ERROR";
    }
    return "?";
}

void
defaultSink(LogLevel level, const std::string &message)
{
    std::cerr << "[kodan " << levelName(level) << "] " << message << '\n';
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

bool
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sink_mutex);
    if (sink && global_sink) {
        return false; // double-install: keep the active sink
    }
    global_sink = std::move(sink);
    return true;
}

bool
setLogTap(LogTap tap)
{
    if (tap == nullptr) {
        global_tap.store(nullptr, std::memory_order_release);
        return true;
    }
    LogTap expected = nullptr;
    if (global_tap.compare_exchange_strong(expected, tap,
                                           std::memory_order_acq_rel)) {
        return true;
    }
    // Re-installing the already-active tap is an idempotent success;
    // competing with a different one is the rejected double-install.
    return expected == tap;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(global_level)) {
        return;
    }
    if (const LogTap tap = global_tap.load(std::memory_order_acquire)) {
        tap(level, message);
    }
    LogSink sink;
    {
        std::lock_guard<std::mutex> lock(sink_mutex);
        sink = global_sink;
    }
    if (sink) {
        sink(level, message);
    } else {
        defaultSink(level, message);
    }
}

void
setLogRateLimit(double tokens_per_s, double burst)
{
    {
        std::lock_guard<std::mutex> lock(rate_mutex);
        rate_resolved = true;
        rate_limit.tokens_per_s = tokens_per_s;
        rate_limit.burst = burst;
    }
    // Re-prime every bucket to the new burst on its next admit().
    rate_epoch.fetch_add(1, std::memory_order_acq_rel);
}

LogRateLimit
logRateLimit()
{
    return resolveRateLimit();
}

std::uint64_t
logSuppressedCount()
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(rate_mutex);
    for (const detail::LogRateSite *site : rate_sites) {
        total += site->dropped();
    }
    return total;
}

void
flushLogSuppressed()
{
    std::vector<detail::LogRateSite *> sites;
    {
        std::lock_guard<std::mutex> lock(rate_mutex);
        sites = rate_sites;
    }
    for (detail::LogRateSite *site : sites) {
        const std::uint64_t dropped = site->takeDropped();
        if (dropped == 0) {
            continue;
        }
        std::ostringstream oss;
        oss << "[rate-limited] suppressed " << dropped << " message(s) from "
            << site->file() << ':' << site->line();
        // Straight to logMessage: the report itself is never limited.
        logMessage(LogLevel::Warn, oss.str());
    }
}

namespace detail {

LogRateSite::LogRateSite(const char *file, int line)
    : file_(file), line_(line)
{
    std::lock_guard<std::mutex> lock(rate_mutex);
    rate_sites.push_back(this);
}

bool
LogRateSite::admit()
{
    const LogRateLimit limit = resolveRateLimit();
    if (limit.burst <= 0.0) {
        return true; // limiting disabled
    }
    const std::uint64_t epoch = rate_epoch.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_ != epoch) {
        // First use, or the limit changed: start with a full bucket.
        epoch_ = epoch;
        tokens_ = limit.burst;
        last_ = now;
    } else if (limit.tokens_per_s > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(now - last_).count();
        if (elapsed > 0.0) {
            tokens_ = std::min(limit.burst,
                               tokens_ + elapsed * limit.tokens_per_s);
            last_ = now;
        }
    }
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return true;
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

} // namespace detail

void
fatal(const std::string &message)
{
    if (const LogTap tap = global_tap.load(std::memory_order_acquire)) {
        tap(LogLevel::Error, message);
    }
    std::cerr << "[kodan FATAL] " << message << '\n';
    std::exit(1);
}

void
panic(const std::string &message)
{
    if (const LogTap tap = global_tap.load(std::memory_order_acquire)) {
        tap(LogLevel::Error, message);
    }
    std::cerr << "[kodan PANIC] " << message << '\n';
    std::abort();
}

} // namespace kodan::util
