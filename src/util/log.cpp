#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>

namespace kodan::util {

namespace {

LogLevel global_level = LogLevel::Warn;

std::mutex sink_mutex;
LogSink global_sink; // null = default stderr sink (guarded by sink_mutex)
std::atomic<LogTap> global_tap{nullptr};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "DEBUG";
      case LogLevel::Info:
        return "INFO";
      case LogLevel::Warn:
        return "WARN";
      case LogLevel::Error:
        return "ERROR";
    }
    return "?";
}

void
defaultSink(LogLevel level, const std::string &message)
{
    std::cerr << "[kodan " << levelName(level) << "] " << message << '\n';
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

bool
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sink_mutex);
    if (sink && global_sink) {
        return false; // double-install: keep the active sink
    }
    global_sink = std::move(sink);
    return true;
}

bool
setLogTap(LogTap tap)
{
    if (tap == nullptr) {
        global_tap.store(nullptr, std::memory_order_release);
        return true;
    }
    LogTap expected = nullptr;
    if (global_tap.compare_exchange_strong(expected, tap,
                                           std::memory_order_acq_rel)) {
        return true;
    }
    // Re-installing the already-active tap is an idempotent success;
    // competing with a different one is the rejected double-install.
    return expected == tap;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(global_level)) {
        return;
    }
    if (const LogTap tap = global_tap.load(std::memory_order_acquire)) {
        tap(level, message);
    }
    LogSink sink;
    {
        std::lock_guard<std::mutex> lock(sink_mutex);
        sink = global_sink;
    }
    if (sink) {
        sink(level, message);
    } else {
        defaultSink(level, message);
    }
}

void
fatal(const std::string &message)
{
    if (const LogTap tap = global_tap.load(std::memory_order_acquire)) {
        tap(LogLevel::Error, message);
    }
    std::cerr << "[kodan FATAL] " << message << '\n';
    std::exit(1);
}

void
panic(const std::string &message)
{
    if (const LogTap tap = global_tap.load(std::memory_order_acquire)) {
        tap(LogLevel::Error, message);
    }
    std::cerr << "[kodan PANIC] " << message << '\n';
    std::abort();
}

} // namespace kodan::util
