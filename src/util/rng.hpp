/**
 * @file
 * Deterministic pseudo-random number generation for kodan.
 *
 * Everything stochastic in the library (dataset synthesis, model
 * initialization, clustering restarts, simulation noise) draws from Rng so
 * that a single seed reproduces an entire experiment bit-for-bit.
 */

#ifndef KODAN_UTIL_RNG_HPP
#define KODAN_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace kodan::util {

/**
 * Mix a 64-bit value with the SplitMix64 finalizer.
 *
 * Useful both for seeding and as a stateless hash of coordinates.
 *
 * @param x Input value.
 * @return Well-mixed 64-bit output.
 */
std::uint64_t splitMix64(std::uint64_t x);

/**
 * Deterministic xoshiro256** generator.
 *
 * Small, fast, and high quality; the whole library shares this one
 * generator type so experiments are reproducible from a single seed.
 */
class Rng
{
  public:
    /**
     * Construct from a 64-bit seed; the four words of internal state are
     * derived via SplitMix64 so that nearby seeds give unrelated streams.
     *
     * @param seed Any 64-bit seed; 0 is valid.
     */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Uniform double in [lo, hi).
     * @param lo Inclusive lower bound.
     * @param hi Exclusive upper bound; must satisfy hi >= lo.
     */
    double uniform(double lo, double hi);

    /**
     * Uniform integer in [lo, hi] (both inclusive).
     * @param lo Inclusive lower bound.
     * @param hi Inclusive upper bound; must satisfy hi >= lo.
     */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, cached spare). */
    double normal();

    /**
     * Normal deviate with the given mean and standard deviation.
     * @param mean Distribution mean.
     * @param stddev Distribution standard deviation; must be >= 0.
     */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p in [0, 1]. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @param weights Unnormalized weights; at least one must be positive.
     * @return Index in [0, weights.size()).
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Fisher-Yates shuffle of an index permutation [0, n).
     * @param n Number of elements.
     * @return A uniformly random permutation of {0, ..., n-1}.
     */
    std::vector<std::size_t> permutation(std::size_t n);

    /**
     * Derive an independent child generator.
     *
     * @param stream_id Identifier mixed into the child's seed so different
     *                  subsystems get decorrelated streams.
     */
    Rng split(std::uint64_t stream_id);

  private:
    std::uint64_t state_[4];
    double spareNormal_;
    bool hasSpareNormal_;
};

} // namespace kodan::util

#endif // KODAN_UTIL_RNG_HPP
