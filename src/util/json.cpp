#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace kodan::util::json {

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[name, value] : members_) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    const Value *value = find(key);
    return value != nullptr && value->isNumber() ? value->asNumber()
                                                 : fallback;
}

std::string
Value::stringOr(const std::string &key, const std::string &fallback) const
{
    const Value *value = find(key);
    return value != nullptr && value->isString() ? value->asString()
                                                 : fallback;
}

Value
Value::makeBool(bool v)
{
    Value value;
    value.kind_ = Kind::Bool;
    value.bool_ = v;
    return value;
}

Value
Value::makeNumber(double v)
{
    Value value;
    value.kind_ = Kind::Number;
    value.number_ = v;
    return value;
}

Value
Value::makeString(std::string v)
{
    Value value;
    value.kind_ = Kind::String;
    value.string_ = std::move(v);
    return value;
}

Value
Value::makeArray(std::vector<Value> v)
{
    Value value;
    value.kind_ = Kind::Array;
    value.array_ = std::move(v);
    return value;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> v)
{
    Value value;
    value.kind_ = Kind::Object;
    value.members_ = std::move(v);
    return value;
}

namespace {

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text)
        : text_(text)
    {
    }

    bool parseDocument(Value &out, std::string *error)
    {
        skipWhitespace();
        if (!parseValue(out)) {
            report(error);
            return false;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            report(error);
            return false;
        }
        return true;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    std::string message_;
    std::size_t error_pos_ = 0;

    void fail(const std::string &message)
    {
        if (message_.empty()) {
            message_ = message;
            error_pos_ = pos_;
        }
    }

    void report(std::string *error) const
    {
        if (error != nullptr) {
            std::ostringstream os;
            os << message_ << " at byte " << error_pos_;
            *error = os.str();
        }
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWhitespace()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r')) {
            ++pos_;
        }
    }

    bool consumeLiteral(const char *literal)
    {
        std::size_t i = 0;
        while (literal[i] != '\0') {
            if (pos_ + i >= text_.size() || text_[pos_ + i] != literal[i]) {
                fail(std::string("expected '") + literal + "'");
                return false;
            }
            ++i;
        }
        pos_ += i;
        return true;
    }

    bool parseValue(Value &out)
    {
        if (atEnd()) {
            fail("unexpected end of input");
            return false;
        }
        switch (peek()) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"': {
            std::string text;
            if (!parseString(text)) {
                return false;
            }
            out = Value::makeString(std::move(text));
            return true;
          }
          case 't':
            if (!consumeLiteral("true")) {
                return false;
            }
            out = Value::makeBool(true);
            return true;
          case 'f':
            if (!consumeLiteral("false")) {
                return false;
            }
            out = Value::makeBool(false);
            return true;
          case 'n':
            if (!consumeLiteral("null")) {
                return false;
            }
            out = Value::makeNull();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(Value &out)
    {
        ++pos_; // '{'
        std::vector<std::pair<std::string, Value>> members;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            out = Value::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWhitespace();
            if (atEnd() || peek() != '"') {
                fail("expected object key string");
                return false;
            }
            std::string key;
            if (!parseString(key)) {
                return false;
            }
            skipWhitespace();
            if (atEnd() || peek() != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            skipWhitespace();
            Value value;
            if (!parseValue(value)) {
                return false;
            }
            members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (!atEnd() && peek() == ',') {
                ++pos_;
                continue;
            }
            if (!atEnd() && peek() == '}') {
                ++pos_;
                out = Value::makeObject(std::move(members));
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool parseArray(Value &out)
    {
        ++pos_; // '['
        std::vector<Value> elements;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            out = Value::makeArray(std::move(elements));
            return true;
        }
        while (true) {
            skipWhitespace();
            Value element;
            if (!parseValue(element)) {
                return false;
            }
            elements.push_back(std::move(element));
            skipWhitespace();
            if (!atEnd() && peek() == ',') {
                ++pos_;
                continue;
            }
            if (!atEnd() && peek() == ']') {
                ++pos_;
                out = Value::makeArray(std::move(elements));
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    /** Append @p codepoint to @p out as UTF-8. */
    static void appendUtf8(std::string &out, unsigned codepoint)
    {
        if (codepoint < 0x80) {
            out += static_cast<char>(codepoint);
        } else if (codepoint < 0x800) {
            out += static_cast<char>(0xC0 | (codepoint >> 6));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        } else if (codepoint < 0x10000) {
            out += static_cast<char>(0xE0 | (codepoint >> 12));
            out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (codepoint >> 18));
            out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (atEnd()) {
                fail("unterminated string");
                return false;
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return true;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd()) {
                fail("unterminated escape");
                return false;
            }
            const char escape = text_[pos_++];
            switch (escape) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned codepoint = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    codepoint <<= 4;
                    if (h >= '0' && h <= '9') {
                        codepoint |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        codepoint |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        codepoint |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad hex digit in \\u escape");
                        return false;
                    }
                }
                appendUtf8(out, codepoint);
                break;
              }
              default:
                fail("unknown escape character");
                return false;
            }
        }
    }

    bool parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && (peek() == '-' || peek() == '+')) {
            ++pos_;
        }
        while (!atEnd() &&
               (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                peek() == '.' || peek() == 'e' || peek() == 'E' ||
                peek() == '+' || peek() == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("expected a value");
            return false;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            fail("malformed number");
            return false;
        }
        out = Value::makeNumber(number);
        return true;
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    Parser parser(text);
    return parser.parseDocument(out, error);
}

bool
parseLines(const std::string &text, std::vector<Value> &out,
           std::string *error)
{
    out.clear();
    std::istringstream stream(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(stream, line)) {
        ++line_number;
        bool blank = true;
        for (const char c : line) {
            if (c != ' ' && c != '\t' && c != '\r') {
                blank = false;
                break;
            }
        }
        if (blank) {
            continue;
        }
        Value value;
        std::string line_error;
        if (!parse(line, value, &line_error)) {
            if (error != nullptr) {
                std::ostringstream os;
                os << "line " << line_number << ": " << line_error;
                *error = os.str();
            }
            return false;
        }
        out.push_back(std::move(value));
    }
    return true;
}

} // namespace kodan::util::json
