#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace kodan::util {

SummaryStats::SummaryStats()
    : count_(0), mean_(0.0), m2_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      sum_(0.0)
{
}

void
SummaryStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
SummaryStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
SummaryStats::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    assert(!values.empty());
    assert(p >= 0.0 && p <= 100.0);
    std::sort(values.begin(), values.end());
    if (values.size() == 1) {
        return values.front();
    }
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

double
relativeImprovement(double value, double baseline)
{
    assert(baseline != 0.0);
    return (value - baseline) / baseline;
}

double
clamp(double x, double lo, double hi)
{
    return std::max(lo, std::min(hi, x));
}

} // namespace kodan::util
