/**
 * @file
 * Fixed-width console tables and CSV emission for the benchmark harness.
 *
 * Every bench binary prints the rows/series of one paper table or figure;
 * TablePrinter keeps that output aligned and CsvWriter mirrors it to disk
 * for plotting.
 */

#ifndef KODAN_UTIL_TABLE_HPP
#define KODAN_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace kodan::util {

/**
 * Collects rows of string cells and prints them with aligned columns.
 */
class TablePrinter
{
  public:
    /** @param headers Column headers, printed first and underlined. */
    explicit TablePrinter(std::vector<std::string> headers);

    /**
     * Append a row. Must have the same cell count as the header row.
     */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimal places. */
    static std::string fmt(double value, int precision = 3);

    /** Convenience: format an integer. */
    static std::string fmt(long long value);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Emit the table (header + rows) as CSV to @p os. */
    void writeCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal CSV writer with quoting of commas/quotes/newlines.
 */
class CsvWriter
{
  public:
    /** @param os Output stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &os);

    /** Write one row of cells, quoting when necessary. */
    void writeRow(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;
};

} // namespace kodan::util

#endif // KODAN_UTIL_TABLE_HPP
