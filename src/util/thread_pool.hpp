/**
 * @file
 * Deterministic parallel execution layer: a shared worker pool plus a
 * small parallelFor / parallelMapReduce facade.
 *
 * Design contract (enforced by tests/core/test_parallel_equivalence.cpp):
 * parallel output is bit-identical to serial output for ANY thread
 * count. The facade guarantees this by construction —
 *   - work items are pure functions of their index (callers must not
 *     share mutable state across items);
 *   - per-item results are stored at their index, never in completion
 *     order;
 *   - reductions run serially, in index order, after all items finish.
 * Chunk boundaries and thread count therefore affect scheduling only,
 * never results.
 *
 * The thread count defaults to the KODAN_THREADS environment variable
 * (falling back to std::thread::hardware_concurrency). At one thread the
 * facade runs inline on the caller's stack with no pool interaction, so
 * `KODAN_THREADS=1` reproduces the historical serial execution exactly.
 */

#ifndef KODAN_UTIL_THREAD_POOL_HPP
#define KODAN_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace kodan::util {

/**
 * A fixed-size worker pool with a FIFO task queue.
 *
 * The destructor drains the queue: tasks already enqueued run to
 * completion before the workers join, so destroying a busy pool never
 * abandons work and never deadlocks.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; values < 1 are clamped to 1. A pool
     *        with one worker still runs tasks on that worker (use the
     *        facade below for the inline serial fast path).
     */
    explicit ThreadPool(int threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Joins after draining all enqueued tasks. */
    ~ThreadPool();

    /** Number of worker threads. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a fire-and-forget task. */
    void enqueue(std::function<void()> task);

    /**
     * Run @p task(i) for every i in [0, count) across the pool and block
     * until all complete. The calling thread participates, so a batch
     * never deadlocks even on a single-worker pool. The first exception
     * thrown by any task is rethrown here (remaining tasks still run).
     */
    void runBatch(std::size_t count,
                  const std::function<void(std::size_t)> &task);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

/** Tuning knobs of a facade call. */
struct ParallelOptions
{
    /**
     * Worker threads to use; 0 means the global default (KODAN_THREADS
     * or hardware concurrency). 1 forces the inline serial path.
     */
    int threads = 0;
    /** Minimum items per chunk (coarsens scheduling, never results). */
    std::size_t grain = 1;
};

/**
 * Install a hook invoked at the start of every worker thread spawned by
 * ThreadPool (and the pipeline runtime's stage workers) — used by
 * telemetry::prof to register new threads with the sampling profiler.
 * The hook must be installed before the threads it should observe are
 * spawned (the harness installs it in configureFromArgs, ahead of any
 * pool construction). Pass nullptr to clear.
 */
void setWorkerStartHook(void (*hook)());

namespace detail {

/** Run the installed worker-start hook (no-op when none). */
void runWorkerStartHook();

} // namespace detail

/**
 * Thread count of the global pool: the last setGlobalThreads() override,
 * else KODAN_THREADS, else hardware concurrency (at least 1).
 */
int globalThreadCount();

/**
 * Override the global thread count (primarily for tests sweeping thread
 * counts). Pass 0 to restore the environment-derived default. Rebuilds
 * the shared pool on next use; not safe to call while a facade call is
 * in flight on another thread.
 */
void setGlobalThreads(int threads);

/**
 * Run @p fn(i) for every i in [0, n). Items may run on any thread in any
 * order; @p fn must not share mutable state across items. Blocks until
 * all items finish; rethrows the first exception.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
                 const ParallelOptions &options = {});

/**
 * Chunked variant: @p fn(begin, end) over a partition of [0, n). Use
 * when per-item dispatch overhead matters; the partition is a scheduling
 * detail and carries no determinism obligations (results must not depend
 * on chunk boundaries).
 */
void parallelForChunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &fn,
    const ParallelOptions &options = {});

/**
 * Map every index through @p map in parallel, then fold the results into
 * @p init serially in index order via @p reduce(acc, value). Because the
 * reduction order is fixed, the result is bit-identical to the serial
 * loop `for i: reduce(acc, map(i))` for any thread count.
 */
template <typename T, typename Map, typename Reduce>
T
parallelMapReduce(std::size_t n, T init, Map &&map, Reduce &&reduce,
                  const ParallelOptions &options = {})
{
    using Mapped = decltype(map(std::size_t{0}));
    std::vector<std::optional<Mapped>> slots(n);
    parallelFor(
        n, [&](std::size_t i) { slots[i].emplace(map(i)); }, options);
    T acc = std::move(init);
    for (auto &slot : slots) {
        reduce(acc, std::move(*slot));
    }
    return acc;
}

} // namespace kodan::util

#endif // KODAN_UTIL_THREAD_POOL_HPP
