#include "util/table.hpp"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace kodan::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TablePrinter::fmt(long long value)
{
    return std::to_string(value);
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-') + "  ";
    }
    os << rule << '\n';
    for (const auto &row : rows_) {
        print_row(row);
    }
}

void
TablePrinter::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    csv.writeRow(headers_);
    for (const auto &row : rows_) {
        csv.writeRow(row);
    }
}

CsvWriter::CsvWriter(std::ostream &os)
    : os_(os)
{
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string &cell = cells[i];
        const bool needs_quote =
            cell.find_first_of(",\"\n") != std::string::npos;
        if (i != 0) {
            os_ << ',';
        }
        if (needs_quote) {
            os_ << '"';
            for (char ch : cell) {
                if (ch == '"') {
                    os_ << "\"\"";
                } else {
                    os_ << ch;
                }
            }
            os_ << '"';
        } else {
            os_ << cell;
        }
    }
    os_ << '\n';
}

} // namespace kodan::util
