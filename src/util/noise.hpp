/**
 * @file
 * Deterministic lattice value-noise and fractal Brownian motion fields.
 *
 * The procedural geospatial model (kodan::data::GeoModel) builds terrain
 * classes and cloud cover from these fields. They are stateless functions
 * of (seed, coordinates), so any tile of the synthetic Earth can be
 * evaluated independently and reproducibly.
 */

#ifndef KODAN_UTIL_NOISE_HPP
#define KODAN_UTIL_NOISE_HPP

#include <cstdint>

namespace kodan::util {

/**
 * Smooth lattice value noise in up to three dimensions.
 *
 * Values at integer lattice points are uniform in [0, 1] from a hash of
 * (seed, cell); between lattice points values are interpolated with a
 * quintic smoothstep, giving a C2-continuous field.
 */
class ValueNoise
{
  public:
    /** @param seed Seed defining the entire infinite field. */
    explicit ValueNoise(std::uint64_t seed);

    /**
     * Evaluate the noise field.
     *
     * @param x First coordinate (arbitrary units; features ~1 unit wide).
     * @param y Second coordinate.
     * @param z Third coordinate (use for time evolution); default 0.
     * @return Smooth value in [0, 1].
     */
    double at(double x, double y, double z = 0.0) const;

    /**
     * Hash an integer lattice cell to a uniform double in [0, 1].
     *
     * Exposed for tests and for callers needing per-cell categorical
     * draws (e.g. terrain class votes).
     */
    double cellValue(std::int64_t ix, std::int64_t iy, std::int64_t iz) const;

  private:
    std::uint64_t seed_;
};

/**
 * Fractal Brownian motion: a weighted sum of ValueNoise octaves.
 *
 * Each octave doubles spatial frequency and halves amplitude (scaled by
 * @c gain), producing natural-looking multi-scale structure for
 * continents, biome boundaries, and cloud masses.
 */
class FbmNoise
{
  public:
    /**
     * @param seed Field seed.
     * @param octaves Number of octaves to sum; must be >= 1.
     * @param lacunarity Frequency multiplier per octave (typically 2).
     * @param gain Amplitude multiplier per octave (typically 0.5).
     */
    FbmNoise(std::uint64_t seed, int octaves, double lacunarity = 2.0,
             double gain = 0.5);

    /**
     * Evaluate the fBm field, normalized back into [0, 1].
     *
     * @param x First coordinate.
     * @param y Second coordinate.
     * @param z Third coordinate (e.g. time); default 0.
     */
    double at(double x, double y, double z = 0.0) const;

  private:
    ValueNoise base_;
    int octaves_;
    double lacunarity_;
    double gain_;
    double norm_; // 1 / sum of octave amplitudes
};

/**
 * Noise evaluated on the sphere via 3-D embedding.
 *
 * Evaluating lattice noise directly on (lat, lon) seams at the antimeridian
 * and pinches at the poles; embedding the point on the unit sphere and
 * sampling 3-D fBm avoids both artifacts.
 */
class SphericalFbm
{
  public:
    /**
     * @param seed Field seed.
     * @param octaves fBm octave count.
     * @param frequency Feature frequency; ~n features around the equator.
     */
    SphericalFbm(std::uint64_t seed, int octaves, double frequency);

    /**
     * Evaluate at a geodetic direction.
     *
     * @param lat_rad Geodetic latitude in radians, [-pi/2, pi/2].
     * @param lon_rad Longitude in radians (any wrap).
     * @param time Optional third axis for temporal evolution (e.g. cloud
     *             advection), in arbitrary units.
     * @return Smooth value in [0, 1], continuous across the antimeridian.
     */
    double at(double lat_rad, double lon_rad, double time = 0.0) const;

  private:
    FbmNoise fbm_;
    double frequency_;
};

} // namespace kodan::util

#endif // KODAN_UTIL_NOISE_HPP
