#include "pipeline/stage.hpp"

#include <cassert>

namespace kodan::pipeline {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Capture:
        return "capture";
      case Stage::TileClassify:
        return "tile_classify";
      case Stage::Infer:
        return "infer";
      case Stage::Elide:
        return "elide";
      case Stage::Record:
        return "record";
    }
    return "unknown";
}

StagePlan
StagePlan::build(int worker_count)
{
    if (worker_count < 1) {
        worker_count = 1;
    }
    StagePlan plan;
    plan.lanes = (worker_count + kStageCount - 1) / kStageCount;
    plan.workers.reserve(static_cast<std::size_t>(worker_count));

    // Within a lane, spans are fixed tables, not a load balancer: the
    // split must be a pure function of the worker count so the ring
    // topology (and the journal/report routing built on it) is
    // reproducible. Inference and tiling are the heavy stages, so they
    // shed neighbours first as workers are added.
    static const int kSpans[5][5][2] = {
        {{0, 4}},                                 // 1 worker
        {{0, 1}, {2, 4}},                         // 2 workers
        {{0, 1}, {2, 2}, {3, 4}},                 // 3 workers
        {{0, 0}, {1, 1}, {2, 2}, {3, 4}},         // 4 workers
        {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}, // 5 workers
    };

    // Deal workers to lanes as evenly as possible; earlier lanes take
    // the remainder.
    const int base = worker_count / plan.lanes;
    const int extra = worker_count % plan.lanes;
    for (int lane = 0; lane < plan.lanes; ++lane) {
        const int lane_workers = base + (lane < extra ? 1 : 0);
        assert(lane_workers >= 1 && lane_workers <= kStageCount);
        for (int w = 0; w < lane_workers; ++w) {
            WorkerSpan span;
            span.lane = lane;
            span.first_stage = kSpans[lane_workers - 1][w][0];
            span.last_stage = kSpans[lane_workers - 1][w][1];
            plan.workers.push_back(span);
        }
    }
    return plan;
}

} // namespace kodan::pipeline
