#include "pipeline/loadgen.hpp"

#include <cassert>
#include <chrono>

namespace kodan::pipeline {

LoadGenerator::LoadGenerator(const std::vector<data::FrameSample> &pool)
    : pool_(&pool)
{
    assert(!pool.empty());
}

LoadResult
LoadGenerator::run(PipelineRuntime &pipeline,
                   std::size_t total_frames) const
{
    FrameSource source;
    source.pool = pool_;
    source.total = total_frames;

    LoadResult result;
    result.frames = total_frames;
    const auto start = std::chrono::steady_clock::now();
    result.report = pipeline.process(source);
    const auto stop = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.fps = result.seconds > 0.0
                     ? static_cast<double>(total_frames) / result.seconds
                     : 0.0;
    return result;
}

} // namespace kodan::pipeline
