/**
 * @file
 * Stage taxonomy and the worker/lane plan of the staged data plane.
 *
 * The per-frame work of core::Runtime is five stages; the plan maps a
 * worker count onto lanes (independent ring chains) and contiguous
 * stage spans within each lane, preserving the single-producer/
 * single-consumer contract of every ring: each stage of a lane is
 * owned by exactly one worker, so the ring feeding it has one
 * consumer, and the ring it feeds has one producer.
 */

#ifndef KODAN_PIPELINE_STAGE_HPP
#define KODAN_PIPELINE_STAGE_HPP

#include <vector>

namespace kodan::pipeline {

/** The five stages a frame flows through, in order. */
enum class Stage : int
{
    /** Bind the next frame of the lane's subsequence to a free slot. */
    Capture = 0,
    /** Tile the frame and label every tile's context (one batched
     *  engine forward). */
    TileClassify = 1,
    /** Burst-batched specialized inference: the keep/drop decisions of
     *  all modeled tiles of a burst of frames, grouped by model, in
     *  one forwardBatch call per model. */
    Infer = 2,
    /** The per-tile accounting loop producing the FrameReport. */
    Elide = 3,
    /** Downlink-queue/record: telemetry + journal + report delivery,
     *  then slot release. */
    Record = 4,
};

/** Number of stages. */
inline constexpr int kStageCount = 5;

/** Human-readable stage name ("capture", "tile_classify", ...). */
const char *stageName(Stage stage);

/** One worker's assignment: a contiguous stage span within a lane. */
struct WorkerSpan
{
    /** Lane (independent ring chain) this worker serves. */
    int lane = 0;
    /** First stage of the span (inclusive). */
    int first_stage = 0;
    /** Last stage of the span (inclusive). */
    int last_stage = 0;
};

/**
 * The worker/lane layout for a worker count.
 *
 * Up to five workers share one lane, splitting the stage sequence
 * into contiguous spans (heaviest stages get dedicated workers
 * first). Beyond five, workers spread across ceil(W/5) lanes; frames
 * are dealt to lanes round-robin by frame index, so lane membership —
 * and therefore every ring's producer/consumer pairing — is a pure
 * function of the plan, never of runtime timing.
 */
struct StagePlan
{
    /** Independent ring chains; frame i belongs to lane i % lanes. */
    int lanes = 1;
    /** One entry per worker thread. */
    std::vector<WorkerSpan> workers;

    /** Build the plan for @p worker_count workers (minimum 1). */
    static StagePlan build(int worker_count);
};

} // namespace kodan::pipeline

#endif // KODAN_PIPELINE_STAGE_HPP
