/**
 * @file
 * The staged data plane: a drop-in alternative scheduler for
 * core::Runtime::processFrames.
 *
 * Where the batch path fans whole frames across a thread pool, the
 * data plane streams them: frames flow by pointer through
 * arena-resident slots (arena.hpp) across lock-free SPSC rings
 * (ring.hpp) connecting the capture -> tile/classify ->
 * specialize/infer -> elide -> record stages (stage.hpp). Each worker
 * runs a run-to-completion poll loop over its contiguous stage span;
 * the infer stage dequeues bursts and feeds ml::Mlp::forwardBatch one
 * cross-frame batch per model. Steady state does no heap allocation
 * and takes no locks.
 *
 * Output contract (proved by `ctest -L dataplane`): for the same
 * frames, PipelineRuntime::processFrames returns a bit-identical
 * FrameReport and emits byte-identical journal output and identical
 * deterministic metrics to Runtime::processFrames, at any worker
 * count. The recipe:
 *  - the stages run the *same code* (Runtime's stage entry points);
 *  - burst-batched inference regroups rows across frames, which
 *    cannot change bits because forwardBatch is row-independent and
 *    the per-frame FP accumulation happens later, in stageElide, in
 *    fixed tile order;
 *  - journal events route to (region, frame index) lanes and
 *    per-frame reports land at their frame index and reduce in index
 *    order, exactly as the batch path does;
 *  - pipeline-specific telemetry (ring gauges, stage timers, depth
 *    events) is emitted only when Options::stats is on, so default
 *    runs add no metric names.
 *
 * Backpressure is structural: the capture stage can only admit a
 * frame when the freelist yields a slot, so a slow stage fills the
 * rings behind it and stalls admission — the open-loop load generator
 * (loadgen.hpp) then measures the true sustainable throughput.
 */

#ifndef KODAN_PIPELINE_PIPELINE_RUNTIME_HPP
#define KODAN_PIPELINE_PIPELINE_RUNTIME_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "pipeline/arena.hpp"
#include "pipeline/ring.hpp"
#include "pipeline/stage.hpp"

namespace kodan::pipeline {

/** Largest burst a worker dequeues at once (bounds stack arrays). */
inline constexpr std::size_t kMaxBurst = 64;

/**
 * Random-access frame feed for the data plane. Cycles over a pool, so
 * an open-loop generator can offer more frames than it materializes;
 * frame(i) must be safe to call concurrently (it is read-only).
 */
struct FrameSource
{
    /** Backing frames (non-owning; must outlive the run). */
    const std::vector<data::FrameSample> *pool = nullptr;
    /** Frames the run offers (index range [0, total)). */
    std::size_t total = 0;

    /** Frame for global index @p i (wraps over the pool). */
    const data::FrameSample &frame(std::size_t i) const
    {
        return (*pool)[i % pool->size()];
    }
};

/**
 * Runs a core::Runtime's stages as a staged pipeline.
 *
 * Construction allocates everything (lanes, rings, slot arenas);
 * processFrames only moves pointers. One PipelineRuntime may be
 * reused across runs; it is not itself thread-safe (one run at a
 * time).
 */
class PipelineRuntime
{
  public:
    struct Options
    {
        /** Worker threads; 0 uses util::globalThreadCount()
         *  (KODAN_THREADS), mirroring the batch path. */
        int workers = 0;
        /** Slots per lane = max frames in flight per lane. */
        std::size_t slots_per_lane = 64;
        /** Capacity of each stage-to-stage ring (rounded to pow2). */
        std::size_t ring_capacity = 64;
        /** Max frames a worker dequeues per poll (clamped to
         *  kMaxBurst); the infer stage batches across the burst. */
        std::size_t burst = 8;
        /**
         * Emit pipeline.* telemetry: ring-occupancy gauges, per-stage
         * latency timers, and `pipeline.ring.depth` journal events
         * (the kodan-top queue pane feed). Off by default so the
         * data plane's metric/journal output stays byte-identical to
         * the batch path.
         */
        bool stats = false;
    };

    /** @param runtime The runtime whose stages to schedule (not
     *  owned; must outlive this object). */
    explicit PipelineRuntime(const core::Runtime &runtime);
    PipelineRuntime(const core::Runtime &runtime,
                    const Options &options);

    PipelineRuntime(const PipelineRuntime &) = delete;
    PipelineRuntime &operator=(const PipelineRuntime &) = delete;

    /** The worker/lane plan in effect. */
    const StagePlan &plan() const { return plan_; }

    /** Options in effect (after clamping). */
    const Options &options() const { return opts_; }

    /**
     * Process @p frames through the pipeline; bit-identical output to
     * Runtime::processFrames(frames). An empty batch is a no-op that
     * emits nothing, matching the batch path.
     */
    core::FrameReport processFrames(
        const std::vector<data::FrameSample> &frames);

    /** Process @p source.total frames drawn from @p source. */
    core::FrameReport process(const FrameSource &source);

  private:
    /** One independent ring chain with its slot pool. */
    struct Lane
    {
        Lane(std::size_t slots, std::size_t ring_capacity)
            : arena(slots), to_tile_classify(ring_capacity),
              to_infer(ring_capacity), to_elide(ring_capacity),
              to_record(ring_capacity)
        {
        }

        SlotArena arena;
        SpscRing<FrameSlot *> to_tile_classify;
        SpscRing<FrameSlot *> to_infer;
        SpscRing<FrameSlot *> to_elide;
        SpscRing<FrameSlot *> to_record;

        /** The ring feeding @p stage (1..4). */
        SpscRing<FrameSlot *> &ringInto(int stage);
    };

    /** Per-run shared state handed to every worker. */
    struct RunState
    {
        const FrameSource *source = nullptr;
        std::size_t total = 0;
        std::uint64_t region_id = 0;
        std::vector<core::FrameReport> *reports = nullptr;
        bool stats = false;
    };

    /**
     * Per-worker pressure counters for the fleet health plane (stats
     * runs only). Unlike the frame reports these are scheduling
     * observations — stall counts depend on timing — so they feed
     * health rollups and the ring-saturation alert, never the
     * deterministic metric/journal streams.
     */
    struct WorkerStats
    {
        /** Empty polls (input starvation) while frames remained. */
        std::uint64_t stalls = 0;
        /** Blocked pushes into a full downstream ring. */
        std::uint64_t backpressure = 0;
        /** Max observed depth/capacity per stage fed (index = stage). */
        double max_saturation[kStageCount] = {};
    };

    static void trackSaturation(WorkerStats &ws, int stage_fed,
                                std::size_t depth, std::size_t capacity);
    void workerLoop(const WorkerSpan &span, RunState &rs,
                    WorkerStats &ws) const;
    void runStage(Stage stage, Lane &lane, FrameSlot **burst,
                  std::size_t count, RunState &rs) const;
    void burstInfer(FrameSlot **burst, std::size_t count) const;
    void recordRingDepth(int stage_fed, std::size_t depth,
                         std::size_t capacity, int lane) const;

    const core::Runtime *runtime_;
    Options opts_;
    StagePlan plan_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    /** Run ordinal: the health plane's "bin" for pipeline signals. */
    std::uint64_t run_seq_ = 0;
    /** Per-frame reports of the current run, indexed by frame index;
     *  capacity persists across runs. */
    std::vector<core::FrameReport> reports_;
};

} // namespace kodan::pipeline

#endif // KODAN_PIPELINE_PIPELINE_RUNTIME_HPP
