/**
 * @file
 * Arena-resident frame slots and their freelist ring.
 *
 * Frames never move through the data plane — a FrameSlot (holding one
 * core::FrameWork, whose buffer capacities persist across frames) is
 * acquired from the freelist by the capture stage, flows stage to
 * stage by pointer, and is returned by the record stage. After the
 * first lap warms every slot's buffers, steady-state processing does
 * no heap allocation (asserted by bench_dataplane's allocation guard).
 *
 * The freelist is itself an SPSC ring: within a lane the record stage
 * is the only producer (releasing slots) and the capture stage the
 * only consumer (acquiring them), so slot recycling needs no locks
 * either.
 */

#ifndef KODAN_PIPELINE_ARENA_HPP
#define KODAN_PIPELINE_ARENA_HPP

#include <cstddef>
#include <vector>

#include "core/runtime.hpp"
#include "pipeline/ring.hpp"

namespace kodan::pipeline {

/** One arena slot: a frame in flight plus its reusable working state. */
struct FrameSlot
{
    /** Global index of the frame currently bound to this slot. */
    std::size_t frame_index = 0;
    /** The frame's stage-to-stage working state (capacities persist). */
    core::FrameWork work;
};

/**
 * A lane's pre-allocated slot pool. All slots are heap-resident once,
 * at construction; the freelist starts full.
 */
class SlotArena
{
  public:
    /** @param slot_count Slots in the pool (= max frames in flight). */
    explicit SlotArena(std::size_t slot_count)
        : slots_(slot_count), freelist_(slot_count)
    {
        // Pre-worker fill: happens-before every worker via thread
        // creation, so the SPSC contract starts clean.
        for (auto &slot : slots_) {
            FrameSlot *p = &slot;
            const bool ok = freelist_.push(p);
            (void)ok;
            assert(ok);
        }
    }

    /** Slots in the pool. */
    std::size_t capacity() const { return slots_.size(); }

    /** The recycle ring (producer: record stage; consumer: capture). */
    SpscRing<FrameSlot *> &freelist() { return freelist_; }

  private:
    std::vector<FrameSlot> slots_;
    SpscRing<FrameSlot *> freelist_;
};

} // namespace kodan::pipeline

#endif // KODAN_PIPELINE_ARENA_HPP
