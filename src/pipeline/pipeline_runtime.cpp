#include "pipeline/pipeline_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "data/tiler.hpp"
#include "ml/kernels.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::pipeline {

namespace {

/**
 * Poll-loop pressure valve. The first polls spin (the counterpart is
 * usually one burst away); sustained emptiness yields, then naps —
 * essential on machines with fewer cores than workers, where the
 * counterpart cannot run until this thread gets off the CPU.
 */
void
backoff(unsigned &idle)
{
    ++idle;
    if (idle < 16) {
        return;
    }
    if (idle < 1024) {
        std::this_thread::yield();
        return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

/** Frames of @p total assigned to @p lane under @p lanes lanes
 *  (round-robin by frame index). */
std::size_t
laneShare(std::size_t total, int lane, int lanes)
{
    const auto l = static_cast<std::size_t>(lane);
    const auto n = static_cast<std::size_t>(lanes);
    return (total + n - 1 - l) / n;
}

} // namespace

SpscRing<FrameSlot *> &
PipelineRuntime::Lane::ringInto(int stage)
{
    switch (static_cast<Stage>(stage)) {
      case Stage::TileClassify:
        return to_tile_classify;
      case Stage::Infer:
        return to_infer;
      case Stage::Elide:
        return to_elide;
      case Stage::Record:
        return to_record;
      case Stage::Capture:
        break;
    }
    assert(false && "no ring feeds the capture stage");
    return to_tile_classify;
}

PipelineRuntime::PipelineRuntime(const core::Runtime &runtime)
    : PipelineRuntime(runtime, Options())
{
}

PipelineRuntime::PipelineRuntime(const core::Runtime &runtime,
                                 const Options &options)
    : runtime_(&runtime), opts_(options)
{
    if (opts_.workers <= 0) {
        opts_.workers = util::globalThreadCount();
    }
    opts_.burst = std::min(std::max<std::size_t>(opts_.burst, 1),
                           kMaxBurst);
    opts_.slots_per_lane = std::max<std::size_t>(opts_.slots_per_lane,
                                                 opts_.burst);
    // Stage rings must be able to hold every in-flight slot, or a
    // producer could stall behind a ring while the consumer stalls on
    // another — capacity >= slots makes every push eventually succeed
    // and the structural backpressure live only in the freelist.
    opts_.ring_capacity =
        std::max(opts_.ring_capacity, opts_.slots_per_lane);
    plan_ = StagePlan::build(opts_.workers);
    lanes_.reserve(static_cast<std::size_t>(plan_.lanes));
    for (int lane = 0; lane < plan_.lanes; ++lane) {
        lanes_.push_back(std::make_unique<Lane>(opts_.slots_per_lane,
                                                opts_.ring_capacity));
    }
}

core::FrameReport
PipelineRuntime::processFrames(const std::vector<data::FrameSample> &frames)
{
    FrameSource source;
    source.pool = &frames;
    source.total = frames.size();
    return process(source);
}

core::FrameReport
PipelineRuntime::process(const FrameSource &source)
{
    // Match the batch path: an empty run emits nothing at all.
    if (source.total == 0 || source.pool == nullptr ||
        source.pool->empty()) {
        return {};
    }
    KODAN_TRACE_SCOPE("runtime.batch.process");
    KODAN_COUNT_ADD("runtime.frames.batched", source.total);
    // Same region discipline as Runtime::processFrames: one region per
    // run, frame i's events in slot i + 1, so the exported journal is
    // byte-identical to the batch path for any worker count.
    telemetry::JournalRegion journal_region("runtime.batch");
    reports_.resize(source.total);

    RunState rs;
    rs.source = &source;
    rs.total = source.total;
    rs.region_id = journal_region.id();
    rs.reports = &reports_;
    rs.stats = opts_.stats;

    // Worker pressure counters heap-allocate only when stats is on;
    // stats-off runs share one stack dummy so the steady state stays
    // allocation-free (bench_dataplane asserts it).
    std::vector<WorkerStats> worker_stats;
    if (opts_.stats) {
        worker_stats.resize(plan_.workers.size());
    }
    WorkerStats stats_off_dummy;
    if (plan_.workers.size() == 1) {
        // Single worker runs inline: no thread spawn, so a warmed run
        // is allocation-free end to end.
        workerLoop(plan_.workers[0], rs,
                   opts_.stats ? worker_stats[0] : stats_off_dummy);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(plan_.workers.size());
        for (std::size_t w = 0; w < plan_.workers.size(); ++w) {
            const WorkerSpan &span = plan_.workers[w];
            WorkerStats &ws =
                opts_.stats ? worker_stats[w] : stats_off_dummy;
            threads.emplace_back([this, &span, &rs, &ws] {
                util::detail::runWorkerStartHook();
                workerLoop(span, rs, ws);
            });
        }
        for (auto &thread : threads) {
            thread.join();
        }
    }

    // Health contribution: fold the workers' pressure counters in
    // worker index order into per-stage stall/backpressure/saturation
    // signals. Scheduling observations (timing-dependent), so they are
    // gated behind stats AND the health switch and never touch the
    // deterministic streams; bin = run ordinal, sim time is not
    // meaningful here.
    if (opts_.stats && telemetry::health::healthEnabled()) {
        telemetry::health::HealthPlane &plane =
            telemetry::health::plane();
        using telemetry::health::EntityKind;
        const auto bin = static_cast<std::int64_t>(run_seq_++);
        std::uint64_t stalls[kStageCount] = {};
        std::uint64_t backpressure[kStageCount] = {};
        double saturation[kStageCount] = {};
        for (std::size_t w = 0; w < plan_.workers.size(); ++w) {
            const WorkerSpan &span = plan_.workers[w];
            const WorkerStats &ws = worker_stats[w];
            stalls[span.first_stage] += ws.stalls;
            backpressure[span.last_stage] += ws.backpressure;
            for (int s = 0; s < kStageCount; ++s) {
                saturation[s] =
                    std::max(saturation[s], ws.max_saturation[s]);
            }
        }
        const double t = static_cast<double>(bin);
        for (int s = 0; s < kStageCount; ++s) {
            // The capture "ring" is the freelist; a full freelist
            // means an idle pipeline, not pressure, so the
            // ring-saturation signal starts at the first real ring.
            if (s != static_cast<int>(Stage::Capture)) {
                plane.observe(EntityKind::Stage, s, "ring.saturation",
                              bin, t, saturation[s]);
            }
            plane.observe(EntityKind::Stage, s, "stage.stalls", bin, t,
                          static_cast<double>(stalls[s]));
            plane.observe(EntityKind::Stage, s, "stage.backpressure",
                          bin, t,
                          static_cast<double>(backpressure[s]));
        }
    } else if (opts_.stats) {
        ++run_seq_;
    }

    core::FrameReport total = core::Runtime::aggregate(reports_);
    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("runtime.batch.aggregate")
            .i64("frames", static_cast<std::int64_t>(source.total))
            .f64("mean_compute_time_s", total.compute_time)
            .f64("mean_product_fraction", total.product_fraction)
            .i64("tiles_discarded", total.tiles_discarded)
            .i64("tiles_downlinked", total.tiles_downlinked)
            .i64("tiles_modeled", total.tiles_modeled);
    }
    return total;
}

void
PipelineRuntime::workerLoop(const WorkerSpan &span, RunState &rs,
                            WorkerStats &ws) const
{
    // All ws writes are rs.stats-gated: on non-stats runs every worker
    // shares one dummy entry that must stay untouched.
    Lane &lane = *lanes_[static_cast<std::size_t>(span.lane)];
    const std::size_t lane_total =
        laneShare(rs.total, span.lane, plan_.lanes);
    if (lane_total == 0) {
        return;
    }
    const bool has_capture =
        span.first_stage == static_cast<int>(Stage::Capture);
    const bool has_record =
        span.last_stage == static_cast<int>(Stage::Record);
    SpscRing<FrameSlot *> *in =
        has_capture ? nullptr : &lane.ringInto(span.first_stage);
    SpscRing<FrameSlot *> *out =
        has_record ? nullptr : &lane.ringInto(span.last_stage + 1);

    FrameSlot *burst[kMaxBurst];
    const std::size_t burst_max = opts_.burst;
    std::size_t produced = 0;
    std::size_t processed = 0;
    unsigned idle = 0;

    while (processed < lane_total) {
        std::size_t count = 0;
        if (has_capture) {
            // Admission: one frame per free slot, in the lane's frame
            // order. An exhausted freelist is backpressure — spin
            // until the record stage recycles.
            while (count < burst_max && produced < lane_total) {
                FrameSlot *slot = nullptr;
                if (!lane.arena.freelist().pop(slot)) {
                    break;
                }
                slot->frame_index =
                    static_cast<std::size_t>(span.lane) +
                    produced * static_cast<std::size_t>(plan_.lanes);
                ++produced;
                burst[count++] = slot;
            }
            if (rs.stats && count > 0) {
                const std::size_t depth = lane.arena.freelist().size();
                const std::size_t cap =
                    lane.arena.freelist().capacity();
                recordRingDepth(static_cast<int>(Stage::Capture),
                                depth, cap, span.lane);
                trackSaturation(ws, static_cast<int>(Stage::Capture),
                                depth, cap);
            }
        } else {
            count = in->popBurst(burst, burst_max);
            if (rs.stats && count > 0) {
                const std::size_t depth = in->size() + count;
                recordRingDepth(span.first_stage, depth,
                                in->capacity(), span.lane);
                trackSaturation(ws, span.first_stage, depth,
                                in->capacity());
            }
        }
        if (count == 0) {
            if (rs.stats) {
                ++ws.stalls;
            }
            backoff(idle);
            continue;
        }
        idle = 0;

        // Run-to-completion: the whole burst crosses every stage of
        // the span before the next dequeue. Capture itself has no
        // body (binding happened at admission).
        const int first_body = std::max(
            span.first_stage, static_cast<int>(Stage::TileClassify));
        for (int s = first_body; s <= span.last_stage; ++s) {
            runStage(static_cast<Stage>(s), lane, burst, count, rs);
        }

        if (has_record) {
            for (std::size_t i = 0; i < count; ++i) {
                // Freelist capacity equals the slot count, so the
                // push cannot fail.
                const bool ok = lane.arena.freelist().push(burst[i]);
                (void)ok;
                assert(ok);
            }
        } else {
            std::size_t pushed = 0;
            unsigned wait = 0;
            while (pushed < count) {
                pushed += out->pushBurst(burst + pushed, count - pushed);
                if (pushed < count) {
                    if (rs.stats) {
                        ++ws.backpressure;
                    }
                    backoff(wait);
                }
            }
        }
        processed += count;
    }
}

void
PipelineRuntime::trackSaturation(WorkerStats &ws, int stage_fed,
                                 std::size_t depth, std::size_t capacity)
{
    if (capacity == 0) {
        return;
    }
    ws.max_saturation[stage_fed] = std::max(
        ws.max_saturation[stage_fed],
        static_cast<double>(depth) / static_cast<double>(capacity));
}

void
PipelineRuntime::runStage(Stage stage, Lane &lane, FrameSlot **burst,
                          std::size_t count, RunState &rs) const
{
    (void)lane;
    switch (stage) {
      case Stage::Capture:
        break;
      case Stage::TileClassify: {
        // Lazy tiling: stats + context ids only; the infer stage
        // decimates exactly the modeled tiles (the data plane's
        // biggest per-frame saving — elided tiles never pay the
        // block-decimation pass).
        if (rs.stats) {
            KODAN_TRACE_SCOPE("pipeline.stage.tile_classify_s");
            for (std::size_t i = 0; i < count; ++i) {
                runtime_->stageTileClassifyLazy(
                    rs.source->frame(burst[i]->frame_index),
                    burst[i]->work);
            }
            break;
        }
        for (std::size_t i = 0; i < count; ++i) {
            runtime_->stageTileClassifyLazy(
                rs.source->frame(burst[i]->frame_index),
                burst[i]->work);
        }
        break;
      }
      case Stage::Infer: {
        if (rs.stats) {
            KODAN_TRACE_SCOPE("pipeline.stage.infer_s");
            burstInfer(burst, count);
            break;
        }
        burstInfer(burst, count);
        break;
      }
      case Stage::Elide: {
        if (rs.stats) {
            KODAN_TRACE_SCOPE("pipeline.stage.elide_s");
            for (std::size_t i = 0; i < count; ++i) {
                runtime_->stageElide(burst[i]->work);
            }
            break;
        }
        for (std::size_t i = 0; i < count; ++i) {
            runtime_->stageElide(burst[i]->work);
        }
        break;
      }
      case Stage::Record: {
        for (std::size_t i = 0; i < count; ++i) {
            FrameSlot *slot = burst[i];
            // Mirror the batch path's per-frame shape: the frame
            // timer (call count must match) and the journal lane
            // keyed by frame index, both independent of which worker
            // runs this.
            KODAN_TIME_SCOPE("runtime.frame.process");
            telemetry::JournalScope journal_scope(rs.region_id,
                                                  slot->frame_index);
            runtime_->stageRecord(slot->work);
            (*rs.reports)[slot->frame_index] = slot->work.report;
        }
        break;
      }
    }
}

void
PipelineRuntime::burstInfer(FrameSlot **burst, std::size_t count) const
{
    const core::SelectionLogic &logic = runtime_->logic();
    const core::SpecializedZoo &zoo = runtime_->zoo();
    auto &arena = ml::kernels::scratch();
    const int models = static_cast<int>(zoo.entries.size());

    // One forwardBatch per model over the rows of every tile in the
    // burst that this model filters. Grouping rows across frames is
    // bit-transparent: rows are standardized per tile (tileInputs),
    // the network forward is row-independent, and the per-frame FP
    // accumulation happens downstream in stageElide in fixed tile
    // order. Iteration order (burst slot, then tile) is repeated for
    // the fill and scatter passes so offsets agree.
    for (int m = 0; m < models; ++m) {
        std::size_t model_tiles = 0;
        for (std::size_t i = 0; i < count; ++i) {
            const core::FrameWork &work = burst[i]->work;
            for (std::size_t t = 0; t < work.tiles.size(); ++t) {
                const core::Action &action =
                    logic.per_context[work.contexts[t]];
                if (action.kind == core::ActionKind::RunModel &&
                    action.model == m) {
                    ++model_tiles;
                }
            }
        }
        if (model_tiles == 0) {
            continue;
        }
        const std::size_t rows = model_tiles * data::kBlocksPerTile;
        ml::kernels::Scratch::Frame scratch_frame(arena);
        double *scaled =
            arena.alloc(rows * static_cast<std::size_t>(
                                   data::kBlockInputDim));
        std::size_t row = 0;
        for (std::size_t i = 0; i < count; ++i) {
            core::FrameWork &work = burst[i]->work;
            for (std::size_t t = 0; t < work.tiles.size(); ++t) {
                const core::Action &action =
                    logic.per_context[work.contexts[t]];
                if (action.kind == core::ActionKind::RunModel &&
                    action.model == m) {
                    // Lazily-tiled slots materialize the block grid
                    // here, for exactly the modeled tiles.
                    if (work.tiles[t].block_features.empty()) {
                        data::Tiler::decimate(work.tiles[t]);
                    }
                    zoo.tileInputs(
                        work.tiles[t],
                        scaled + row * static_cast<std::size_t>(
                                           data::kBlockInputDim));
                    row += data::kBlocksPerTile;
                }
            }
        }
        assert(row == rows);
        double *probs = arena.alloc(rows);
        zoo.predictRows(m, scaled, rows, probs);
        row = 0;
        for (std::size_t i = 0; i < count; ++i) {
            core::FrameWork &work = burst[i]->work;
            for (std::size_t t = 0; t < work.tiles.size(); ++t) {
                const core::Action &action =
                    logic.per_context[work.contexts[t]];
                if (action.kind == core::ActionKind::RunModel &&
                    action.model == m) {
                    core::Runtime::keepFromProbs(
                        probs + row, data::kBlocksPerTile,
                        work.keep.data() + t * data::kBlocksPerTile);
                    row += data::kBlocksPerTile;
                }
            }
        }
    }
}

void
PipelineRuntime::recordRingDepth(int stage_fed, std::size_t depth,
                                 std::size_t capacity, int lane) const
{
    // Occupancy observed at each burst dequeue: gauge mean/max answer
    // "how deep does the queue before each stage run"; the journal
    // events are the kodan-top queue pane's live feed. Distinct macro
    // sites per ring because the handle cache is per call site.
    const char *ring_name = "free";
    switch (static_cast<Stage>(stage_fed)) {
      case Stage::Capture:
        KODAN_GAUGE_ADD("pipeline.ring.free.depth", depth);
        ring_name = "free";
        break;
      case Stage::TileClassify:
        KODAN_GAUGE_ADD("pipeline.ring.tile_classify.depth", depth);
        ring_name = "tile_classify";
        break;
      case Stage::Infer:
        KODAN_GAUGE_ADD("pipeline.ring.infer.depth", depth);
        ring_name = "infer";
        break;
      case Stage::Elide:
        KODAN_GAUGE_ADD("pipeline.ring.elide.depth", depth);
        ring_name = "elide";
        break;
      case Stage::Record:
        KODAN_GAUGE_ADD("pipeline.ring.record.depth", depth);
        ring_name = "record";
        break;
    }
    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("pipeline.ring.depth")
            .text("ring", ring_name)
            .i64("lane", lane)
            .i64("depth", static_cast<std::int64_t>(depth))
            .i64("capacity", static_cast<std::int64_t>(capacity));
    }
}

} // namespace kodan::pipeline
