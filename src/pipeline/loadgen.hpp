/**
 * @file
 * Open-loop saturating load generator for the staged data plane.
 *
 * Offers frames to the pipeline as fast as admission allows — the
 * generator never paces itself on completions (open loop), so the
 * measured rate is the pipeline's sustainable throughput under
 * structural backpressure, not the offered rate. Frames are drawn
 * round-robin from a fixed pool, so an arbitrarily long run needs
 * only the pool's memory.
 */

#ifndef KODAN_PIPELINE_LOADGEN_HPP
#define KODAN_PIPELINE_LOADGEN_HPP

#include <cstddef>
#include <vector>

#include "data/sample.hpp"
#include "pipeline/pipeline_runtime.hpp"

namespace kodan::pipeline {

/** Outcome of one load-generation run. */
struct LoadResult
{
    /** Aggregate report over the offered frames (bit-identical to the
     *  batch path over the same frame sequence). */
    core::FrameReport report;
    /** Frames processed. */
    std::size_t frames = 0;
    /** Wall-clock seconds of the run. */
    double seconds = 0.0;
    /** Sustained throughput (frames / seconds). */
    double fps = 0.0;
};

/**
 * Drives a PipelineRuntime with a cycled frame pool.
 */
class LoadGenerator
{
  public:
    /** @param pool Frames cycled round-robin (non-owning; must
     *  outlive the generator and be non-empty). */
    explicit LoadGenerator(const std::vector<data::FrameSample> &pool);

    /** Saturate @p pipeline with @p total_frames frames and time it. */
    LoadResult run(PipelineRuntime &pipeline,
                   std::size_t total_frames) const;

  private:
    const std::vector<data::FrameSample> *pool_;
};

} // namespace kodan::pipeline

#endif // KODAN_PIPELINE_LOADGEN_HPP
