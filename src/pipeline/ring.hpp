/**
 * @file
 * Fixed-capacity lock-free single-producer/single-consumer ring.
 *
 * The stage-to-stage conduit of the staged data plane: each ring
 * connects exactly one upstream worker (producer) to one downstream
 * worker (consumer), so no CAS loops or locks are needed — one
 * release store per side, acquire loads only when the cached view of
 * the counterpart index runs out (the DPDK/ndn-dpdk rte_ring idiom,
 * restricted to SPSC). Capacity is a power of two so wrapping is a
 * mask, and indices are free-running 64-bit counters so no reset is
 * ever needed between runs.
 *
 * Burst transfer (pushBurst/popBurst) amortizes the per-element
 * atomics to one publish per burst and is what lets the infer stage
 * dequeue a full batch of frames for one cross-frame forwardBatch
 * call.
 */

#ifndef KODAN_PIPELINE_RING_HPP
#define KODAN_PIPELINE_RING_HPP

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace kodan::pipeline {

/** Cache-line size used to pad the producer/consumer halves apart. */
inline constexpr std::size_t kCacheLine = 64;

/**
 * Lock-free SPSC ring of trivially-copyable items (the data plane
 * moves FrameSlot pointers, never frame payloads).
 *
 * Thread contract: push/pushBurst from exactly one producer thread,
 * pop/popBurst from exactly one consumer thread. size() is safe from
 * anywhere but only approximate while both sides are running.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity Slots (rounded up to a power of two, >= 2). */
    explicit SpscRing(std::size_t capacity = 64)
    {
        std::size_t cap = 2;
        while (cap < capacity) {
            cap <<= 1;
        }
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Usable capacity in items. */
    std::size_t capacity() const { return slots_.size(); }

    /** Approximate occupancy (exact when one side is quiescent). */
    std::size_t size() const
    {
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        const std::size_t head = head_.load(std::memory_order_acquire);
        return tail - head;
    }

    /** Producer side: enqueue one item. @return false when full. */
    bool push(const T &item) { return pushBurst(&item, 1) == 1; }

    /**
     * Producer side: enqueue up to @p count items from @p items.
     * @return Items actually enqueued (0 when full) — always the
     * leading prefix, so callers retry with the remainder.
     */
    std::size_t pushBurst(const T *items, std::size_t count)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = capacity() - (tail - cached_head_);
        if (free < count) {
            cached_head_ = head_.load(std::memory_order_acquire);
            free = capacity() - (tail - cached_head_);
            if (free == 0) {
                return 0;
            }
        }
        const std::size_t n = count < free ? count : free;
        for (std::size_t i = 0; i < n; ++i) {
            slots_[(tail + i) & mask_] = items[i];
        }
        tail_.store(tail + n, std::memory_order_release);
        return n;
    }

    /** Consumer side: dequeue one item. @return false when empty. */
    bool pop(T &out) { return popBurst(&out, 1) == 1; }

    /**
     * Consumer side: dequeue up to @p count items into @p out.
     * @return Items actually dequeued (0 when empty).
     */
    std::size_t popBurst(T *out, std::size_t count)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = cached_tail_ - head;
        if (avail < count) {
            cached_tail_ = tail_.load(std::memory_order_acquire);
            avail = cached_tail_ - head;
            if (avail == 0) {
                return 0;
            }
        }
        const std::size_t n = count < avail ? count : avail;
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = slots_[(head + i) & mask_];
        }
        head_.store(head + n, std::memory_order_release);
        return n;
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    /** Consumer index; written by the consumer, read by the producer. */
    alignas(kCacheLine) std::atomic<std::size_t> head_{0};
    /** Producer index; written by the producer, read by the consumer. */
    alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
    /** Producer-private stale view of head_ (avoids acquire per push). */
    alignas(kCacheLine) std::size_t cached_head_ = 0;
    /** Consumer-private stale view of tail_ (avoids acquire per pop). */
    alignas(kCacheLine) std::size_t cached_tail_ = 0;
};

} // namespace kodan::pipeline

#endif // KODAN_PIPELINE_RING_HPP
