/**
 * @file
 * Contact-window computation between satellites and ground stations.
 */

#ifndef KODAN_GROUND_CONTACT_HPP
#define KODAN_GROUND_CONTACT_HPP

#include <cstddef>
#include <vector>

#include "ground/station.hpp"
#include "orbit/propagator.hpp"

namespace kodan::ground {

/** One interval during which a satellite is visible from a station. */
struct ContactWindow
{
    /** Index into the ground segment's station list. */
    std::size_t station = 0;
    /** Index into the constellation's satellite list. */
    std::size_t satellite = 0;
    /** Window start (s since epoch). */
    double start = 0.0;
    /** Window end (s since epoch). */
    double end = 0.0;

    /** Window length in seconds. */
    double duration() const { return end - start; }
};

/**
 * Finds elevation-mask contact windows by coarse sampling plus bisection
 * refinement of the rise/set crossings.
 */
class ContactFinder
{
  public:
    /**
     * @param coarse_step Sampling interval for the visibility scan (s).
     *        Must be well below the shortest pass (~60 s is safe for LEO).
     */
    explicit ContactFinder(double coarse_step = 30.0);

    /**
     * All contact windows of one satellite with one station in [t0, t1].
     *
     * @param sat Propagator of the satellite.
     * @param station Ground station (elevation mask applied).
     * @param t0 Search interval start (s).
     * @param t1 Search interval end (s); must be >= t0.
     */
    std::vector<ContactWindow> find(const orbit::J2Propagator &sat,
                                    const GroundStation &station,
                                    double t0, double t1) const;

    /**
     * Adaptive-stride variant of find(): bit-identical windows, far
     * fewer propagator evaluations.
     *
     * While the satellite is provably outside the station's visibility
     * cone, the scan strides ahead by whole grid cells: with the
     * geocentric separation at theta and the cone's safe half-angle at
     * lambda, the angular rate bound r (perigee true-anomaly rate plus
     * Earth spin and J2 precession) guarantees the satellite stays out
     * of view for (theta - lambda) / r seconds, so every skipped sample
     * is provably below the mask. Samples stay on the same accumulated
     * t0 + k*step grid as find(), so rise/set brackets — and therefore
     * the refined window edges — are bit-identical.
     */
    std::vector<ContactWindow> findAdaptive(const orbit::J2Propagator &sat,
                                            const GroundStation &station,
                                            double t0, double t1) const;

    /**
     * All windows of a constellation against a ground segment, with
     * station/satellite indices filled in, sorted by start time.
     */
    std::vector<ContactWindow>
    findAll(const std::vector<orbit::J2Propagator> &sats,
            const std::vector<GroundStation> &stations, double t0,
            double t1) const;

    /**
     * Parallel adaptive sweep: fans the (satellite, station) pairs out
     * over the global thread pool, each pair scanned with
     * findAdaptive(). Pair results are concatenated in (satellite,
     * station) index order before the same start-time sort findAll()
     * applies, so the output — windows, counters, and journal events —
     * is bit-identical to findAll() at any KODAN_THREADS.
     */
    std::vector<ContactWindow>
    findAllParallel(const std::vector<orbit::J2Propagator> &sats,
                    const std::vector<GroundStation> &stations, double t0,
                    double t1) const;

  private:
    double coarse_step_;

    /** Refine an elevation-mask crossing to ~1 ms by bisection. */
    static double refineCrossing(const orbit::J2Propagator &sat,
                                 const GroundStation &station, double lo,
                                 double hi, bool rising);
};

/** Total seconds of contact in a window list. */
double totalContactSeconds(const std::vector<ContactWindow> &windows);

} // namespace kodan::ground

#endif // KODAN_GROUND_CONTACT_HPP
