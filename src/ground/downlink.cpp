#include "ground/downlink.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace kodan::ground {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

} // namespace

double
DownlinkModel::bitsForContact(double seconds, std::size_t passes) const
{
    const double usable =
        std::max(0.0, seconds - pass_overhead_s *
                                    static_cast<double>(passes));
    return usable * datarate_bps;
}

GroundSegmentScheduler::GroundSegmentScheduler(double step,
                                               double fairness_slack)
    : step_(step), fairness_slack_(fairness_slack)
{
    assert(step > 0.0);
    assert(fairness_slack >= 0.0);
}

GroundSegmentScheduler::State
GroundSegmentScheduler::beginAllocation(std::size_t satellite_count,
                                        std::size_t station_count,
                                        double t0) const
{
    State state;
    state.allocation.seconds_per_satellite.assign(satellite_count, 0.0);
    state.allocation.passes_per_satellite.assign(satellite_count, 0);
    state.allocation.intervals_per_satellite.assign(satellite_count, {});
    state.clock = t0;
    state.last_served.assign(station_count, kNone);
    state.open_runs.assign(station_count, OpenRun{});
    return state;
}

void
GroundSegmentScheduler::allocateSpan(
    const std::vector<ContactWindow> &windows, double t1,
    State &state) const
{
    Allocation &result = state.allocation;
    const std::size_t station_count = state.last_served.size();

    // Per-station contact event queues: window indices sorted by start
    // time. A cursor activates windows as the step clock reaches them;
    // expired windows are dropped lazily during the per-step scan. The
    // active set is kept in ascending window-index order so the
    // least-served tie-break sees candidates in exactly the order the
    // rescan oracle scans the full list.
    std::vector<std::vector<std::uint32_t>> pending(station_count);
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const auto &w = windows[i];
        if (w.station < station_count && w.satellite < result.seconds_per_satellite.size()) {
            pending[w.station].push_back(static_cast<std::uint32_t>(i));
        }
    }
    for (auto &queue : pending) {
        std::sort(queue.begin(), queue.end(),
                  [&windows](std::uint32_t a, std::uint32_t b) {
                      return windows[a].start != windows[b].start
                                 ? windows[a].start < windows[b].start
                                 : a < b;
                  });
    }
    std::vector<std::size_t> cursor(station_count, 0);
    std::vector<std::vector<std::uint32_t>> active(station_count);

    const auto closeRun = [&result](std::size_t station, OpenRun &run) {
        if (run.satellite != kNone) {
            result.intervals_per_satellite[run.satellite].push_back(
                {station, run.start, run.end});
        }
        run.satellite = kNone;
    };

    double t = state.clock;
    for (; t < t1; t += step_) {
        const double slot = std::min(step_, t1 - t);
        const double t_mid = t + 0.5 * slot;
        for (std::size_t g = 0; g < station_count; ++g) {
            // Activate windows whose start has been reached.
            auto &queue = pending[g];
            auto &live = active[g];
            while (cursor[g] < queue.size() &&
                   windows[queue[cursor[g]]].start <= t_mid) {
                const std::uint32_t idx = queue[cursor[g]];
                live.insert(
                    std::lower_bound(live.begin(), live.end(), idx), idx);
                ++cursor[g];
            }
            // Scan only the live windows, dropping expired ones in
            // place. Selection logic is verbatim from the rescan: first
            // strictly-least-served visible satellite wins.
            std::size_t best = kNone;
            double best_time = std::numeric_limits<double>::infinity();
            bool current_visible = false;
            std::size_t keep = 0;
            for (std::size_t k = 0; k < live.size(); ++k) {
                const auto &w = windows[live[k]];
                if (t_mid >= w.end) {
                    continue; // expired: drop from the active set
                }
                live[keep++] = live[k];
                if (t_mid < w.start) {
                    continue;
                }
                if (w.satellite == state.last_served[g]) {
                    current_visible = true;
                }
                // Max-min fairness: grant the least-served satellite.
                if (result.seconds_per_satellite[w.satellite] <
                    best_time) {
                    best_time = result.seconds_per_satellite[w.satellite];
                    best = w.satellite;
                }
            }
            live.resize(keep);
            // Hysteresis: stick with the satellite already being served
            // unless the best contender is far enough behind it.
            if (current_visible && best != state.last_served[g] &&
                result.seconds_per_satellite[state.last_served[g]] -
                        best_time <
                    fairness_slack_) {
                best = state.last_served[g];
            }
            if (best == kNone) {
                result.idle_station_seconds += slot;
                state.last_served[g] = kNone;
                closeRun(g, state.open_runs[g]);
                continue;
            }
            result.busy_station_seconds += slot;
            result.seconds_per_satellite[best] += slot;
            if (state.last_served[g] != best) {
                ++result.passes_per_satellite[best];
                state.last_served[g] = best;
                closeRun(g, state.open_runs[g]);
                state.open_runs[g] = {best, t, t + slot};
            } else {
                state.open_runs[g].end = t + slot;
            }
        }
    }
    state.clock = t;
}

GroundSegmentScheduler::Allocation
GroundSegmentScheduler::finishAllocation(State &&state) const
{
    Allocation result = std::move(state.allocation);
    for (std::size_t g = 0; g < state.open_runs.size(); ++g) {
        auto &run = state.open_runs[g];
        if (run.satellite != kNone) {
            result.intervals_per_satellite[run.satellite].push_back(
                {g, run.start, run.end});
            run.satellite = kNone;
        }
    }
    for (auto &intervals : result.intervals_per_satellite) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.station < b.station;
                  });
    }
    return result;
}

GroundSegmentScheduler::Allocation
GroundSegmentScheduler::allocate(const std::vector<ContactWindow> &windows,
                                 std::size_t satellite_count,
                                 std::size_t station_count, double t0,
                                 double t1) const
{
    assert(t1 >= t0);
    KODAN_TRACE_SCOPE("ground.segment.allocate");
    State state = beginAllocation(satellite_count, station_count, t0);
    allocateSpan(windows, t1, state);
    Allocation result = finishAllocation(std::move(state));
    if (telemetry::enabled()) {
        std::int64_t passes = 0;
        for (const auto count : result.passes_per_satellite) {
            passes += count;
        }
        KODAN_COUNT_ADD("ground.segment.passes.granted", passes);
        KODAN_GAUGE_ADD("ground.segment.busy_s",
                        result.busy_station_seconds);
        KODAN_GAUGE_ADD("ground.segment.idle_s",
                        result.idle_station_seconds);
    }
    if (telemetry::journalEnabled()) {
        std::int64_t passes = 0;
        double granted_s = 0.0;
        for (const auto count : result.passes_per_satellite) {
            passes += count;
        }
        for (const double seconds : result.seconds_per_satellite) {
            granted_s += seconds;
        }
        telemetry::JournalEventBuilder("ground.segment.allocation")
            .i64("satellites",
                 static_cast<std::int64_t>(satellite_count))
            .i64("passes_granted", passes)
            .f64("seconds_granted", granted_s)
            .f64("busy_s", result.busy_station_seconds)
            .f64("idle_s", result.idle_station_seconds);
    }
    return result;
}

GroundSegmentScheduler::Allocation
GroundSegmentScheduler::allocateRescan(
    const std::vector<ContactWindow> &windows, std::size_t satellite_count,
    std::size_t station_count, double t0, double t1) const
{
    assert(t1 >= t0);
    Allocation result;
    result.seconds_per_satellite.assign(satellite_count, 0.0);
    result.passes_per_satellite.assign(satellite_count, 0);
    result.intervals_per_satellite.assign(satellite_count, {});

    // Track which (station, satellite) pair was served last step so pass
    // counting notices new grants. Each station keeps its currently open
    // granted run; a retarget closes it into the satellite's interval
    // list, so intervals coalesce per pass exactly as overhead is paid.
    std::vector<std::size_t> last_served(station_count, kNone);
    std::vector<OpenRun> open_runs(station_count);
    const auto closeRun = [&result](std::size_t station, OpenRun &run) {
        if (run.satellite != kNone) {
            result.intervals_per_satellite[run.satellite].push_back(
                {station, run.start, run.end});
        }
        run.satellite = kNone;
    };

    for (double t = t0; t < t1; t += step_) {
        const double slot = std::min(step_, t1 - t);
        const double t_mid = t + 0.5 * slot;
        for (std::size_t g = 0; g < station_count; ++g) {
            // Find visible satellites at this station right now.
            std::size_t best = kNone;
            double best_time = std::numeric_limits<double>::infinity();
            bool current_visible = false;
            for (const auto &w : windows) {
                if (w.station != g || t_mid < w.start || t_mid >= w.end) {
                    continue;
                }
                if (w.satellite == last_served[g]) {
                    current_visible = true;
                }
                // Max-min fairness: grant the least-served satellite.
                if (result.seconds_per_satellite[w.satellite] < best_time) {
                    best_time = result.seconds_per_satellite[w.satellite];
                    best = w.satellite;
                }
            }
            // Hysteresis: stick with the satellite already being served
            // unless the best contender is far enough behind it.
            if (current_visible && best != last_served[g] &&
                result.seconds_per_satellite[last_served[g]] - best_time <
                    fairness_slack_) {
                best = last_served[g];
            }
            if (best == kNone) {
                result.idle_station_seconds += slot;
                last_served[g] = kNone;
                closeRun(g, open_runs[g]);
                continue;
            }
            result.busy_station_seconds += slot;
            result.seconds_per_satellite[best] += slot;
            if (last_served[g] != best) {
                ++result.passes_per_satellite[best];
                last_served[g] = best;
                closeRun(g, open_runs[g]);
                open_runs[g] = {best, t, t + slot};
            } else {
                open_runs[g].end = t + slot;
            }
        }
    }
    for (std::size_t g = 0; g < station_count; ++g) {
        closeRun(g, open_runs[g]);
    }
    for (auto &intervals : result.intervals_per_satellite) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.station < b.station;
                  });
    }
    return result;
}

} // namespace kodan::ground
