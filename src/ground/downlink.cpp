#include "ground/downlink.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace kodan::ground {

double
DownlinkModel::bitsForContact(double seconds, std::size_t passes) const
{
    const double usable =
        std::max(0.0, seconds - pass_overhead_s *
                                    static_cast<double>(passes));
    return usable * datarate_bps;
}

GroundSegmentScheduler::GroundSegmentScheduler(double step,
                                               double fairness_slack)
    : step_(step), fairness_slack_(fairness_slack)
{
    assert(step > 0.0);
    assert(fairness_slack >= 0.0);
}

GroundSegmentScheduler::Allocation
GroundSegmentScheduler::allocate(const std::vector<ContactWindow> &windows,
                                 std::size_t satellite_count,
                                 std::size_t station_count, double t0,
                                 double t1) const
{
    assert(t1 >= t0);
    KODAN_PROFILE_SCOPE("ground.segment.allocate");
    Allocation result;
    result.seconds_per_satellite.assign(satellite_count, 0.0);
    result.passes_per_satellite.assign(satellite_count, 0);

    // Track which (station, satellite) pair was served last step so pass
    // counting notices new grants.
    std::vector<std::size_t> last_served(
        station_count, std::numeric_limits<std::size_t>::max());

    for (double t = t0; t < t1; t += step_) {
        const double slot = std::min(step_, t1 - t);
        const double t_mid = t + 0.5 * slot;
        for (std::size_t g = 0; g < station_count; ++g) {
            // Find visible satellites at this station right now.
            std::size_t best = std::numeric_limits<std::size_t>::max();
            double best_time = std::numeric_limits<double>::infinity();
            bool current_visible = false;
            for (const auto &w : windows) {
                if (w.station != g || t_mid < w.start || t_mid >= w.end) {
                    continue;
                }
                if (w.satellite == last_served[g]) {
                    current_visible = true;
                }
                // Max-min fairness: grant the least-served satellite.
                if (result.seconds_per_satellite[w.satellite] < best_time) {
                    best_time = result.seconds_per_satellite[w.satellite];
                    best = w.satellite;
                }
            }
            // Hysteresis: stick with the satellite already being served
            // unless the best contender is far enough behind it.
            if (current_visible && best != last_served[g] &&
                result.seconds_per_satellite[last_served[g]] - best_time <
                    fairness_slack_) {
                best = last_served[g];
            }
            if (best == std::numeric_limits<std::size_t>::max()) {
                result.idle_station_seconds += slot;
                last_served[g] = std::numeric_limits<std::size_t>::max();
                continue;
            }
            result.busy_station_seconds += slot;
            result.seconds_per_satellite[best] += slot;
            if (last_served[g] != best) {
                ++result.passes_per_satellite[best];
                last_served[g] = best;
            }
        }
    }
    if (telemetry::enabled()) {
        std::int64_t passes = 0;
        for (const auto count : result.passes_per_satellite) {
            passes += count;
        }
        KODAN_COUNT_ADD("ground.segment.passes.granted", passes);
        KODAN_GAUGE_ADD("ground.segment.busy_s",
                        result.busy_station_seconds);
        KODAN_GAUGE_ADD("ground.segment.idle_s",
                        result.idle_station_seconds);
    }
    if (telemetry::journalEnabled()) {
        std::int64_t passes = 0;
        double granted_s = 0.0;
        for (const auto count : result.passes_per_satellite) {
            passes += count;
        }
        for (const double seconds : result.seconds_per_satellite) {
            granted_s += seconds;
        }
        telemetry::JournalEventBuilder("ground.segment.allocation")
            .i64("satellites",
                 static_cast<std::int64_t>(satellite_count))
            .i64("passes_granted", passes)
            .f64("seconds_granted", granted_s)
            .f64("busy_s", result.busy_station_seconds)
            .f64("idle_s", result.idle_station_seconds);
    }
    return result;
}

} // namespace kodan::ground
