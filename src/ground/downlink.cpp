#include "ground/downlink.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace kodan::ground {

double
DownlinkModel::bitsForContact(double seconds, std::size_t passes) const
{
    const double usable =
        std::max(0.0, seconds - pass_overhead_s *
                                    static_cast<double>(passes));
    return usable * datarate_bps;
}

GroundSegmentScheduler::GroundSegmentScheduler(double step,
                                               double fairness_slack)
    : step_(step), fairness_slack_(fairness_slack)
{
    assert(step > 0.0);
    assert(fairness_slack >= 0.0);
}

GroundSegmentScheduler::Allocation
GroundSegmentScheduler::allocate(const std::vector<ContactWindow> &windows,
                                 std::size_t satellite_count,
                                 std::size_t station_count, double t0,
                                 double t1) const
{
    assert(t1 >= t0);
    KODAN_PROFILE_SCOPE("ground.segment.allocate");
    Allocation result;
    result.seconds_per_satellite.assign(satellite_count, 0.0);
    result.passes_per_satellite.assign(satellite_count, 0);
    result.intervals_per_satellite.assign(satellite_count, {});

    // Track which (station, satellite) pair was served last step so pass
    // counting notices new grants. Each station keeps its currently open
    // granted run; a retarget closes it into the satellite's interval
    // list, so intervals coalesce per pass exactly as overhead is paid.
    std::vector<std::size_t> last_served(
        station_count, std::numeric_limits<std::size_t>::max());
    struct OpenRun
    {
        std::size_t satellite = std::numeric_limits<std::size_t>::max();
        double start = 0.0;
        double end = 0.0;
    };
    std::vector<OpenRun> open_runs(station_count);
    const auto closeRun = [&result](std::size_t station, OpenRun &run) {
        if (run.satellite != std::numeric_limits<std::size_t>::max()) {
            result.intervals_per_satellite[run.satellite].push_back(
                {station, run.start, run.end});
        }
        run.satellite = std::numeric_limits<std::size_t>::max();
    };

    for (double t = t0; t < t1; t += step_) {
        const double slot = std::min(step_, t1 - t);
        const double t_mid = t + 0.5 * slot;
        for (std::size_t g = 0; g < station_count; ++g) {
            // Find visible satellites at this station right now.
            std::size_t best = std::numeric_limits<std::size_t>::max();
            double best_time = std::numeric_limits<double>::infinity();
            bool current_visible = false;
            for (const auto &w : windows) {
                if (w.station != g || t_mid < w.start || t_mid >= w.end) {
                    continue;
                }
                if (w.satellite == last_served[g]) {
                    current_visible = true;
                }
                // Max-min fairness: grant the least-served satellite.
                if (result.seconds_per_satellite[w.satellite] < best_time) {
                    best_time = result.seconds_per_satellite[w.satellite];
                    best = w.satellite;
                }
            }
            // Hysteresis: stick with the satellite already being served
            // unless the best contender is far enough behind it.
            if (current_visible && best != last_served[g] &&
                result.seconds_per_satellite[last_served[g]] - best_time <
                    fairness_slack_) {
                best = last_served[g];
            }
            if (best == std::numeric_limits<std::size_t>::max()) {
                result.idle_station_seconds += slot;
                last_served[g] = std::numeric_limits<std::size_t>::max();
                closeRun(g, open_runs[g]);
                continue;
            }
            result.busy_station_seconds += slot;
            result.seconds_per_satellite[best] += slot;
            if (last_served[g] != best) {
                ++result.passes_per_satellite[best];
                last_served[g] = best;
                closeRun(g, open_runs[g]);
                open_runs[g] = {best, t, t + slot};
            } else {
                open_runs[g].end = t + slot;
            }
        }
    }
    for (std::size_t g = 0; g < station_count; ++g) {
        closeRun(g, open_runs[g]);
    }
    for (auto &intervals : result.intervals_per_satellite) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.station < b.station;
                  });
    }
    if (telemetry::enabled()) {
        std::int64_t passes = 0;
        for (const auto count : result.passes_per_satellite) {
            passes += count;
        }
        KODAN_COUNT_ADD("ground.segment.passes.granted", passes);
        KODAN_GAUGE_ADD("ground.segment.busy_s",
                        result.busy_station_seconds);
        KODAN_GAUGE_ADD("ground.segment.idle_s",
                        result.idle_station_seconds);
    }
    if (telemetry::journalEnabled()) {
        std::int64_t passes = 0;
        double granted_s = 0.0;
        for (const auto count : result.passes_per_satellite) {
            passes += count;
        }
        for (const double seconds : result.seconds_per_satellite) {
            granted_s += seconds;
        }
        telemetry::JournalEventBuilder("ground.segment.allocation")
            .i64("satellites",
                 static_cast<std::int64_t>(satellite_count))
            .i64("passes_granted", passes)
            .f64("seconds_granted", granted_s)
            .f64("busy_s", result.busy_station_seconds)
            .f64("idle_s", result.idle_station_seconds);
    }
    return result;
}

} // namespace kodan::ground
