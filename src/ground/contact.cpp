#include "ground/contact.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace kodan::ground {

namespace {

/**
 * Elevation of the satellite above the station mask at time t (rad).
 * @param site_ecef Precomputed station position (hot path: the coarse
 *        scan evaluates this thousands of times per station).
 */
double
maskedElevation(const orbit::J2Propagator &sat,
                const orbit::Vec3 &site_ecef, double min_elevation,
                double t)
{
    // The station is fixed in ECEF; compare in ECEF at time t.
    const orbit::Vec3 sat_ecef = sat.positionEcef(t);
    return orbit::elevationAngle(site_ecef, sat_ecef) - min_elevation;
}

} // namespace

ContactFinder::ContactFinder(double coarse_step)
    : coarse_step_(coarse_step)
{
    assert(coarse_step > 0.0);
}

double
ContactFinder::refineCrossing(const orbit::J2Propagator &sat,
                              const GroundStation &station, double lo,
                              double hi, bool rising)
{
    const orbit::Vec3 site = station.ecef();
    // Invariant: sign changes across [lo, hi]; rising means below -> above.
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const bool above =
            maskedElevation(sat, site, station.min_elevation, mid) >= 0.0;
        if (above == rising) {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo < 1.0e-3) {
            break;
        }
    }
    return 0.5 * (lo + hi);
}

std::vector<ContactWindow>
ContactFinder::find(const orbit::J2Propagator &sat,
                    const GroundStation &station, double t0, double t1) const
{
    assert(t1 >= t0);
    const orbit::Vec3 site = station.ecef();
    std::vector<ContactWindow> windows;
    bool above_prev =
        maskedElevation(sat, site, station.min_elevation, t0) >= 0.0;
    double window_start = above_prev ? t0 : 0.0;
    bool in_window = above_prev;

    for (double t = t0 + coarse_step_; t < t1 + coarse_step_;
         t += coarse_step_) {
        const double t_clamped = std::min(t, t1);
        const bool above =
            maskedElevation(sat, site, station.min_elevation,
                            t_clamped) >= 0.0;
        if (above && !in_window) {
            window_start = refineCrossing(sat, station,
                                          t_clamped - coarse_step_,
                                          t_clamped, /*rising=*/true);
            in_window = true;
        } else if (!above && in_window) {
            const double window_end =
                refineCrossing(sat, station, t_clamped - coarse_step_,
                               t_clamped, /*rising=*/false);
            windows.push_back({0, 0, std::max(window_start, t0),
                               std::min(window_end, t1)});
            in_window = false;
        }
        if (t_clamped >= t1) {
            break;
        }
    }
    if (in_window) {
        windows.push_back({0, 0, std::max(window_start, t0), t1});
    }
    return windows;
}

std::vector<ContactWindow>
ContactFinder::findAdaptive(const orbit::J2Propagator &sat,
                            const GroundStation &station, double t0,
                            double t1) const
{
    assert(t1 >= t0);
    const orbit::Vec3 site = station.ecef();
    const double site_r = site.norm();
    const auto &elems = sat.elements();
    // Visibility-cone half-angle (geocentric separation between site and
    // satellite directions) at the mask elevation, evaluated at apogee
    // radius: the cone only shrinks at lower radii, so theta beyond this
    // angle proves the satellite is below the mask. Exact for the
    // geocentric-up elevation model; a small margin absorbs float slop.
    const double r_apogee =
        elems.semi_major_axis * (1.0 + elems.eccentricity);
    const double cos_arg = std::clamp(
        (site_r / r_apogee) * std::cos(station.min_elevation), -1.0, 1.0);
    const double lambda_safe =
        std::acos(cos_arg) - station.min_elevation + 0.01;
    // Upper bound on d(theta)/dt: fastest in-plane sweep (true-anomaly
    // rate at perigee) plus apsidal/nodal precession plus Earth spin.
    const double e = elems.eccentricity;
    const double rate =
        1.05 * (sat.meanMotion() * std::sqrt(1.0 + e) /
                    std::pow(1.0 - e, 1.5) +
                std::abs(sat.argPerigeeRate()) + std::abs(sat.raanRate()) +
                util::kEarthOmega);

    std::vector<ContactWindow> windows;
    bool in_window =
        maskedElevation(sat, site, station.min_elevation, t0) >= 0.0;
    double window_start = in_window ? t0 : 0.0;

    for (double t = t0 + coarse_step_; t < t1 + coarse_step_;
         t += coarse_step_) {
        const double t_clamped = std::min(t, t1);
        const orbit::Vec3 sat_ecef = sat.positionEcef(t_clamped);
        const bool above = orbit::elevationAngle(site, sat_ecef) -
                               station.min_elevation >=
                           0.0;
        if (above && !in_window) {
            window_start = refineCrossing(sat, station,
                                          t_clamped - coarse_step_,
                                          t_clamped, /*rising=*/true);
            in_window = true;
        } else if (!above && in_window) {
            const double window_end =
                refineCrossing(sat, station, t_clamped - coarse_step_,
                               t_clamped, /*rising=*/false);
            windows.push_back({0, 0, std::max(window_start, t0),
                               std::min(window_end, t1)});
            in_window = false;
        }
        if (t_clamped >= t1) {
            break;
        }
        if (!above) {
            // Stride over provably-out-of-view grid cells. The time is
            // advanced by repeated += so the surviving samples land on
            // exactly the accumulated grid find() walks.
            const double sat_r = sat_ecef.norm();
            const double cos_theta = std::clamp(
                site.dot(sat_ecef) / (site_r * sat_r), -1.0, 1.0);
            const double slack = std::acos(cos_theta) - lambda_safe;
            if (slack > 0.0) {
                const double cells =
                    std::floor(slack / (rate * coarse_step_));
                // One grid cell is consumed by the loop increment.
                for (double skipped = 1.0;
                     skipped < cells && t + coarse_step_ < t1;
                     skipped += 1.0) {
                    t += coarse_step_;
                }
            }
        }
    }
    if (in_window) {
        windows.push_back({0, 0, std::max(window_start, t0), t1});
    }
    return windows;
}

std::vector<ContactWindow>
ContactFinder::findAll(const std::vector<orbit::J2Propagator> &sats,
                       const std::vector<GroundStation> &stations, double t0,
                       double t1) const
{
    KODAN_TRACE_SCOPE("ground.contact.scan");
    std::vector<ContactWindow> all;
    for (std::size_t s = 0; s < sats.size(); ++s) {
        for (std::size_t g = 0; g < stations.size(); ++g) {
            auto windows = find(sats[s], stations[g], t0, t1);
            for (auto &w : windows) {
                w.satellite = s;
                w.station = g;
                all.push_back(w);
            }
        }
    }
    std::sort(all.begin(), all.end(),
              [](const ContactWindow &a, const ContactWindow &b) {
                  return a.start < b.start;
              });
    KODAN_COUNT_ADD("ground.contact.windows.scanned", all.size());
    if (telemetry::journalEnabled()) {
        // Flight recorder: one begin/end pair per window, in the sorted
        // (deterministic) window order on the caller's journal lane.
        for (const auto &w : all) {
            telemetry::JournalEventBuilder("ground.contact.begin")
                .i64("satellite", static_cast<std::int64_t>(w.satellite))
                .i64("station", static_cast<std::int64_t>(w.station))
                .f64("t_s", w.start);
            telemetry::JournalEventBuilder("ground.contact.end")
                .i64("satellite", static_cast<std::int64_t>(w.satellite))
                .i64("station", static_cast<std::int64_t>(w.station))
                .f64("t_s", w.end)
                .f64("duration_s", w.duration());
        }
    }
    return all;
}

std::vector<ContactWindow>
ContactFinder::findAllParallel(
    const std::vector<orbit::J2Propagator> &sats,
    const std::vector<GroundStation> &stations, double t0, double t1) const
{
    KODAN_TRACE_SCOPE("ground.contact.scan");
    const std::size_t pair_count = sats.size() * stations.size();
    std::vector<std::vector<ContactWindow>> per_pair(pair_count);
    util::parallelFor(pair_count, [&](std::size_t p) {
        const std::size_t s = p / stations.size();
        const std::size_t g = p % stations.size();
        auto windows = findAdaptive(sats[s], stations[g], t0, t1);
        for (auto &w : windows) {
            w.satellite = s;
            w.station = g;
        }
        per_pair[p] = std::move(windows);
    });
    std::vector<ContactWindow> all;
    std::size_t total = 0;
    for (const auto &windows : per_pair) {
        total += windows.size();
    }
    all.reserve(total);
    // Concatenate in pair index order — the exact sequence findAll()'s
    // nested serial loops produce — so the unstable start-time sort sees
    // identical input and the result is bit-identical at any thread
    // count.
    for (auto &windows : per_pair) {
        all.insert(all.end(), windows.begin(), windows.end());
    }
    std::sort(all.begin(), all.end(),
              [](const ContactWindow &a, const ContactWindow &b) {
                  return a.start < b.start;
              });
    KODAN_COUNT_ADD("ground.contact.windows.scanned", all.size());
    if (telemetry::journalEnabled()) {
        for (const auto &w : all) {
            telemetry::JournalEventBuilder("ground.contact.begin")
                .i64("satellite", static_cast<std::int64_t>(w.satellite))
                .i64("station", static_cast<std::int64_t>(w.station))
                .f64("t_s", w.start);
            telemetry::JournalEventBuilder("ground.contact.end")
                .i64("satellite", static_cast<std::int64_t>(w.satellite))
                .i64("station", static_cast<std::int64_t>(w.station))
                .f64("t_s", w.end)
                .f64("duration_s", w.duration());
        }
    }
    return all;
}

double
totalContactSeconds(const std::vector<ContactWindow> &windows)
{
    double total = 0.0;
    for (const auto &w : windows) {
        total += w.duration();
    }
    return total;
}

} // namespace kodan::ground
