#include "ground/contact.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/telemetry.hpp"

namespace kodan::ground {

namespace {

/**
 * Elevation of the satellite above the station mask at time t (rad).
 * @param site_ecef Precomputed station position (hot path: the coarse
 *        scan evaluates this thousands of times per station).
 */
double
maskedElevation(const orbit::J2Propagator &sat,
                const orbit::Vec3 &site_ecef, double min_elevation,
                double t)
{
    // The station is fixed in ECEF; compare in ECEF at time t.
    const orbit::Vec3 sat_ecef = sat.positionEcef(t);
    return orbit::elevationAngle(site_ecef, sat_ecef) - min_elevation;
}

} // namespace

ContactFinder::ContactFinder(double coarse_step)
    : coarse_step_(coarse_step)
{
    assert(coarse_step > 0.0);
}

double
ContactFinder::refineCrossing(const orbit::J2Propagator &sat,
                              const GroundStation &station, double lo,
                              double hi, bool rising)
{
    const orbit::Vec3 site = station.ecef();
    // Invariant: sign changes across [lo, hi]; rising means below -> above.
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const bool above =
            maskedElevation(sat, site, station.min_elevation, mid) >= 0.0;
        if (above == rising) {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo < 1.0e-3) {
            break;
        }
    }
    return 0.5 * (lo + hi);
}

std::vector<ContactWindow>
ContactFinder::find(const orbit::J2Propagator &sat,
                    const GroundStation &station, double t0, double t1) const
{
    assert(t1 >= t0);
    const orbit::Vec3 site = station.ecef();
    std::vector<ContactWindow> windows;
    bool above_prev =
        maskedElevation(sat, site, station.min_elevation, t0) >= 0.0;
    double window_start = above_prev ? t0 : 0.0;
    bool in_window = above_prev;

    for (double t = t0 + coarse_step_; t < t1 + coarse_step_;
         t += coarse_step_) {
        const double t_clamped = std::min(t, t1);
        const bool above =
            maskedElevation(sat, site, station.min_elevation,
                            t_clamped) >= 0.0;
        if (above && !in_window) {
            window_start = refineCrossing(sat, station,
                                          t_clamped - coarse_step_,
                                          t_clamped, /*rising=*/true);
            in_window = true;
        } else if (!above && in_window) {
            const double window_end =
                refineCrossing(sat, station, t_clamped - coarse_step_,
                               t_clamped, /*rising=*/false);
            windows.push_back({0, 0, std::max(window_start, t0),
                               std::min(window_end, t1)});
            in_window = false;
        }
        if (t_clamped >= t1) {
            break;
        }
    }
    if (in_window) {
        windows.push_back({0, 0, std::max(window_start, t0), t1});
    }
    return windows;
}

std::vector<ContactWindow>
ContactFinder::findAll(const std::vector<orbit::J2Propagator> &sats,
                       const std::vector<GroundStation> &stations, double t0,
                       double t1) const
{
    KODAN_PROFILE_SCOPE("ground.contact.scan");
    std::vector<ContactWindow> all;
    for (std::size_t s = 0; s < sats.size(); ++s) {
        for (std::size_t g = 0; g < stations.size(); ++g) {
            auto windows = find(sats[s], stations[g], t0, t1);
            for (auto &w : windows) {
                w.satellite = s;
                w.station = g;
                all.push_back(w);
            }
        }
    }
    std::sort(all.begin(), all.end(),
              [](const ContactWindow &a, const ContactWindow &b) {
                  return a.start < b.start;
              });
    KODAN_COUNT_ADD("ground.contact.windows.scanned", all.size());
    if (telemetry::journalEnabled()) {
        // Flight recorder: one begin/end pair per window, in the sorted
        // (deterministic) window order on the caller's journal lane.
        for (const auto &w : all) {
            telemetry::JournalEventBuilder("ground.contact.begin")
                .i64("satellite", static_cast<std::int64_t>(w.satellite))
                .i64("station", static_cast<std::int64_t>(w.station))
                .f64("t_s", w.start);
            telemetry::JournalEventBuilder("ground.contact.end")
                .i64("satellite", static_cast<std::int64_t>(w.satellite))
                .i64("station", static_cast<std::int64_t>(w.station))
                .f64("t_s", w.end)
                .f64("duration_s", w.duration());
        }
    }
    return all;
}

double
totalContactSeconds(const std::vector<ContactWindow> &windows)
{
    double total = 0.0;
    for (const auto &w : windows) {
        total += w.duration();
    }
    return total;
}

} // namespace kodan::ground
