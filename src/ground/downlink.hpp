/**
 * @file
 * Satellite radio / downlink capacity model and the contended ground
 * segment scheduler.
 */

#ifndef KODAN_GROUND_DOWNLINK_HPP
#define KODAN_GROUND_DOWNLINK_HPP

#include <cstddef>
#include <vector>

#include "ground/contact.hpp"

namespace kodan::ground {

/**
 * Downlink radio attributes of a satellite.
 *
 * The model is rate x time: a satellite in contact with a station it has
 * been granted transfers @c datarate_bps continuously. Link setup overhead
 * per pass is deducted once per granted window.
 */
struct DownlinkModel
{
    /**
     * Sustained *effective* downlink rate while in granted contact
     * (bits/s). The Landsat-8 X-band radio signals at 384 Mbit/s; after
     * coding, framing, retransmission, and weather margin the effective
     * information rate is ~210 Mbit/s, which together with the measured
     * ~15,600 s/day of granted contact reproduces the paper's per-day
     * downlink budget (~750 multispectral frames, 21% of observations).
     */
    double datarate_bps = 210.0e6;
    /** Per-pass overhead (acquisition, ranging, key exchange), seconds. */
    double pass_overhead_s = 15.0;

    /**
     * Usable bits for a granted interval of @p seconds within one pass.
     * @param seconds Granted contact time (s).
     * @param passes Number of distinct passes the time is spread across.
     */
    double bitsForContact(double seconds, std::size_t passes = 1) const;
};

/**
 * Allocates station time among contending satellites.
 *
 * Each station serves at most one satellite at any instant. Allocation is
 * time-stepped: at each step every station grants its slot to the visible
 * satellite that has received the least total time so far (max-min
 * fairness), which matches the behaviour cote models — added satellites
 * first claim idle station time, then steal time from each other until the
 * segment saturates. A hysteresis slack keeps grants contiguous within a
 * pass (real stations do not retarget their dish every few seconds), so
 * per-pass link overhead is paid once per pass rather than per step.
 *
 * Two implementations share these semantics bit-for-bit (proved by the
 * oracle property suite in tests/props/):
 *  - allocate() / the State API walk per-station *contact event queues*:
 *    windows activate from a start-sorted cursor and expire lazily, so
 *    each step touches only the windows actually in view at that station
 *    — O(steps x stations + windows) instead of the rescan's
 *    O(steps x stations x windows). The State form is resumable, so
 *    year-long drivers can feed windows chunk by chunk and keep memory
 *    flat.
 *  - allocateRescan() is the original brute-force rescan-per-step,
 *    retained as the reference oracle for the property tests.
 */
class GroundSegmentScheduler
{
  public:
    /**
     * @param step Allocation granularity in seconds (default 10 s).
     * @param fairness_slack Keep serving the current satellite unless a
     *        visible contender is behind by more than this many seconds.
     */
    explicit GroundSegmentScheduler(double step = 10.0,
                                    double fairness_slack = 240.0);

    /** One contiguous granted run at a single station. */
    struct Interval
    {
        std::size_t station = 0;
        double start = 0.0;
        double end = 0.0;

        double seconds() const { return end - start; }
    };

    /** Result of an allocation run. */
    struct Allocation
    {
        /** Granted contact seconds per satellite. */
        std::vector<double> seconds_per_satellite;
        /** Number of granted (partially or fully) passes per satellite. */
        std::vector<std::size_t> passes_per_satellite;
        /**
         * Granted contact runs per satellite, each coalesced over the
         * scheduler's steps and sorted by (start, station). One interval
         * per granted pass, so downstream models can place downlinked
         * bits on the mission timeline (queue drain times, lineage
         * stamps) instead of only knowing the daily total.
         */
        std::vector<std::vector<Interval>> intervals_per_satellite;
        /** Total station-seconds that had at least one visible satellite. */
        double busy_station_seconds = 0.0;
        /** Total station-seconds with no visible satellite (idle). */
        double idle_station_seconds = 0.0;
    };

    /** One station's currently open granted run (internal to State). */
    struct OpenRun
    {
        std::size_t satellite = static_cast<std::size_t>(-1);
        double start = 0.0;
        double end = 0.0;
    };

    /**
     * Resumable allocation state for chunked (streaming) drivers.
     *
     * The step clock advances by repeated `+= step` from t0 exactly as
     * the one-shot loop does, so feeding the same windows through any
     * chunking of allocateSpan() calls produces bit-identical results —
     * provided span boundaries land on the step grid (an integer step
     * over integer boundaries stays exact in double arithmetic).
     */
    struct State
    {
        Allocation allocation;
        /** Next step start time (exact accumulated step clock). */
        double clock = 0.0;
        /** Satellite served in the previous step, per station. */
        std::vector<std::size_t> last_served;
        /** Open granted run per station, carried across spans. */
        std::vector<OpenRun> open_runs;
    };

    /** Start a resumable allocation at @p t0. */
    State beginAllocation(std::size_t satellite_count,
                          std::size_t station_count, double t0) const;

    /**
     * Advance the stepped allocation to @p t1. @p windows must contain
     * every window overlapping [state.clock, t1) (windows split at span
     * boundaries are fine: visibility is evaluated per step, and pass
     * coalescing rides on the grant continuity in @p state).
     */
    void allocateSpan(const std::vector<ContactWindow> &windows, double t1,
                      State &state) const;

    /** Close open runs and finalize interval ordering. */
    Allocation finishAllocation(State &&state) const;

    /**
     * Allocate station time over [t0, t1].
     *
     * @param windows All contact windows (any order).
     * @param satellite_count Number of satellites (indices in windows).
     * @param station_count Number of stations (indices in windows).
     * @param t0 Interval start (s).
     * @param t1 Interval end (s).
     */
    Allocation allocate(const std::vector<ContactWindow> &windows,
                        std::size_t satellite_count,
                        std::size_t station_count, double t0,
                        double t1) const;

    /**
     * Reference implementation: rescans the full window list at every
     * (step, station). Bit-identical to allocate() — kept as the oracle
     * for the incremental scheduler's property tests. Emits no
     * telemetry.
     */
    Allocation allocateRescan(const std::vector<ContactWindow> &windows,
                              std::size_t satellite_count,
                              std::size_t station_count, double t0,
                              double t1) const;

  private:
    double step_;
    double fairness_slack_;
};

} // namespace kodan::ground

#endif // KODAN_GROUND_DOWNLINK_HPP
