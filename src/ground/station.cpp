#include "ground/station.hpp"

#include "util/units.hpp"

namespace kodan::ground {

using util::degToRad;

namespace {

GroundStation
makeStation(const std::string &name, double lat_deg, double lon_deg)
{
    GroundStation station;
    station.name = name;
    station.location = {degToRad(lat_deg), degToRad(lon_deg), 0.0};
    station.min_elevation = degToRad(10.0);
    return station;
}

} // namespace

std::vector<GroundStation>
landsatGroundSegment()
{
    return {
        makeStation("SiouxFalls", 43.74, -96.62),
        makeStation("GilmoreCreek", 64.98, -147.50),
        makeStation("Svalbard", 78.23, 15.39),
        makeStation("AliceSprings", -23.76, 133.88),
        makeStation("Neustrelitz", 53.33, 13.07),
    };
}

std::vector<GroundStation>
sparseGroundSegment()
{
    return {
        makeStation("SiouxFalls", 43.74, -96.62),
        makeStation("GilmoreCreek", 64.98, -147.50),
    };
}

std::vector<GroundStation>
globalGroundSegment()
{
    // Sites follow the public KSAT / AWS Ground Station / Azure Orbital
    // footprints (approximate coordinates; sea-level heights).
    return {
        makeStation("Svalbard", 78.23, 15.39),
        makeStation("Inuvik", 68.32, -133.55),
        makeStation("GilmoreCreek", 64.98, -147.50),
        makeStation("TromsoNO", 69.66, 18.94),
        makeStation("Esrange", 67.88, 21.07),
        makeStation("NorthPoleAK", 64.80, -147.50),
        makeStation("PrinceAlbert", 53.21, -105.93),
        makeStation("Neustrelitz", 53.33, 13.07),
        makeStation("Ireland", 53.42, -7.90),
        makeStation("SiouxFalls", 43.74, -96.62),
        makeStation("Ohio", 40.06, -83.00),
        makeStation("Oregon", 45.59, -121.18),
        makeStation("Bahrain", 26.07, 50.56),
        makeStation("Hawaii", 19.82, -155.47),
        makeStation("Seoul", 37.46, 126.44),
        makeStation("Singapore", 1.35, 103.82),
        makeStation("Dubbo", -32.24, 148.60),
        makeStation("AliceSprings", -23.76, 133.88),
        makeStation("Awarua", -46.53, 168.38),
        makeStation("Hartebeesthoek", -25.89, 27.69),
        makeStation("CapeTown", -33.93, 18.42),
        makeStation("PuntaArenas", -52.94, -70.85),
        makeStation("Cordoba", -31.52, -64.46),
        makeStation("TrollAntarctica", -72.01, 2.53),
    };
}

} // namespace kodan::ground
