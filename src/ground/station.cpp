#include "ground/station.hpp"

#include "util/units.hpp"

namespace kodan::ground {

using util::degToRad;

namespace {

GroundStation
makeStation(const std::string &name, double lat_deg, double lon_deg)
{
    GroundStation station;
    station.name = name;
    station.location = {degToRad(lat_deg), degToRad(lon_deg), 0.0};
    station.min_elevation = degToRad(10.0);
    return station;
}

} // namespace

std::vector<GroundStation>
landsatGroundSegment()
{
    return {
        makeStation("SiouxFalls", 43.74, -96.62),
        makeStation("GilmoreCreek", 64.98, -147.50),
        makeStation("Svalbard", 78.23, 15.39),
        makeStation("AliceSprings", -23.76, 133.88),
        makeStation("Neustrelitz", 53.33, 13.07),
    };
}

std::vector<GroundStation>
sparseGroundSegment()
{
    return {
        makeStation("SiouxFalls", 43.74, -96.62),
        makeStation("GilmoreCreek", 64.98, -147.50),
    };
}

} // namespace kodan::ground
