/**
 * @file
 * Ground stations and the Landsat-like ground segment preset.
 */

#ifndef KODAN_GROUND_STATION_HPP
#define KODAN_GROUND_STATION_HPP

#include <string>
#include <vector>

#include "orbit/earth.hpp"
#include "orbit/vec3.hpp"

namespace kodan::ground {

/**
 * A receive-capable ground station.
 *
 * A station serves at most one satellite at a time (single-dish
 * assumption, as in cote); contention between satellites for station time
 * is what saturates the downlink as constellations grow.
 */
struct GroundStation
{
    /** Human-readable name. */
    std::string name;
    /** Geodetic location. */
    orbit::Geodetic location;
    /** Minimum usable elevation angle (rad); typical masks are 5-10 deg. */
    double min_elevation = 0.0;

    /** Cached ECEF position of the site (m). */
    orbit::Vec3 ecef() const { return orbit::geodeticToEcef(location); }
};

/**
 * The ground segment used for the Landsat-8-like evaluation scenarios:
 * Sioux Falls, Gilmore Creek (Fairbanks), Svalbard, Alice Springs, and
 * Neustrelitz, all with a 10-degree elevation mask.
 *
 * Station latitudes dominate behaviour: the polar Svalbard site sees a
 * sun-synchronous satellite on nearly every revolution while mid-latitude
 * sites see a handful of passes per day.
 */
std::vector<GroundStation> landsatGroundSegment();

/**
 * A reduced ground segment (Sioux Falls + Gilmore Creek) used for
 * stress-testing contention at small station counts.
 */
std::vector<GroundStation> sparseGroundSegment();

/**
 * A commercial-scale global ground segment (24 sites, 10-degree masks):
 * the KSAT/AWS/Azure-style network a large imaging constellation would
 * lease. High-latitude sites (Svalbard, Inuvik, Punta Arenas, Troll,
 * ...) dominate sun-synchronous contact time; mid- and low-latitude
 * sites add the equatorial coverage polar networks lack. This is the
 * segment ConstellationEngine scenarios pair with multi-plane
 * MissionConfig::makeConstellation layouts.
 */
std::vector<GroundStation> globalGroundSegment();

} // namespace kodan::ground

#endif // KODAN_GROUND_STATION_HPP
