/**
 * @file
 * kodan-report — regression pipeline CLI over telemetry outputs.
 *
 * Subcommands:
 *
 *   kodan-report diff <base.json> <current.json>
 *       [--journal <base.jsonl> <current.jsonl>]
 *       [--timeseries <base.timeseries.json> <current.timeseries.json>]
 *       [--tol-timer F] [--tol-value F] [--tol-bin F]
 *       [--timer-floor SECONDS]
 *       [--tol NAME=F]... [--ignore PREFIX]...
 *       [--markdown PATH]
 *     Compares two metrics snapshots (writeMetricsJson output) and
 *     optionally two flight-recorder journals and/or two sim-time
 *     series documents (--tol-bin sets the per-bin relative tolerance,
 *     default 0 = bit-equal). Prints the markdown summary (to stdout,
 *     or PATH with --markdown). Exit status: 0 when no regression, 1 on
 *     regression, 2 on usage/parse errors.
 *
 *   kodan-report aggregate --name NAME [--label LABEL] [--out PATH]
 *       <snapshot.json>...
 *     Folds one or more metrics snapshots into one trajectory entry and
 *     appends it to the BENCH_<NAME>.json trajectory file (default
 *     PATH: BENCH_<NAME>.json in the working directory). Counters,
 *     counts, and sums add across snapshots; max takes the max. An
 *     existing entry with the same label is replaced.
 *
 *   kodan-report trajectory <BENCH_name.json> [--format json|csv]
 *       [--out PATH]
 *     Re-emits a trajectory file (to stdout, or PATH with --out) in the
 *     requested format; csv yields label,metric,type,count,sum,max rows
 *     for spreadsheet/plotting pipelines.
 *
 *   kodan-report lineage <spans.jsonl>
 *     Assembles per-frame lineage spans (writeLineageJsonl output) into
 *     stage chains and prints end-to-end latency and per-stage
 *     attribution (compute / contact-wait / queue-wait). Exit status: 0
 *     on success, 2 on usage/parse errors.
 *
 *   kodan-report profile <profile.json> [--top K]
 *     Summarizes a CPU profile (--profile-out output): sample header,
 *     top K frames by self time, and the per-span counter table
 *     (IPC / cache-miss attribution; default K 20). Exit status: 0 on
 *     success, 2 on usage/parse errors.
 *
 *   kodan-report profile diff <base.json> <current.json> [--top K]
 *       [--assert] [--tol-calls F] [--tol-cost F] [--cost-floor S]
 *     Ranks regressed frames by delta self-time and regressed spans by
 *     delta cycles (delta task-clock when either run used the rusage
 *     fallback). Span call counts are deterministic and compared
 *     exactly by default (--tol-calls); span costs compare within
 *     --tol-cost relative slowdown (default 0.5) above --cost-floor
 *     seconds (default 1e-3). Exit status: without --assert always 0
 *     unless files fail to parse (2); with --assert, 1 when any
 *     tolerance finding is a regression.
 *
 *   kodan-report health <alerts.jsonl> [--baseline <base.jsonl>]
 *       [--journal <journal.jsonl>] [--top K]
 *     Summarizes a health-plane alert export (writeAlertsJsonl output):
 *     per-rule/entity rollup table plus the top K alerts (default 20).
 *     With --journal, each alert's flight-recorder evidence window is
 *     resolved to the matching journal events. With --baseline, diffs
 *     the alert stream against the committed baseline — the stream is
 *     deterministic, so any divergence is a regression. Exit status: 0
 *     when no regression, 1 on divergence, 2 on usage/parse errors.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/report.hpp"

namespace report = kodan::telemetry::report;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  kodan-report diff <base.json> <current.json>\n"
           "      [--journal <base.jsonl> <current.jsonl>]\n"
           "      [--timeseries <base.ts.json> <current.ts.json>]\n"
           "      [--tol-timer F] [--tol-value F] [--tol-bin F]\n"
           "      [--timer-floor S]\n"
           "      [--tol NAME=F]... [--ignore PREFIX]... "
           "[--markdown PATH]\n"
           "  kodan-report aggregate --name NAME [--label LABEL]\n"
           "      [--out PATH] <snapshot.json>...\n"
           "  kodan-report trajectory <BENCH_name.json>\n"
           "      [--format json|csv] [--out PATH]\n"
           "  kodan-report lineage <spans.jsonl>\n"
           "  kodan-report profile <profile.json> [--top K]\n"
           "  kodan-report profile diff <base.json> <current.json>\n"
           "      [--top K] [--assert] [--tol-calls F] [--tol-cost F]\n"
           "      [--cost-floor S]\n"
           "  kodan-report health <alerts.jsonl>\n"
           "      [--baseline <base.jsonl>] [--journal <journal.jsonl>]\n"
           "      [--top K]\n";
    return 2;
}

int
fail(const std::string &message)
{
    std::cerr << "kodan-report: " << message << "\n";
    return 2;
}

bool
parseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0' && end != text.c_str();
}

int
runDiff(const std::vector<std::string> &args)
{
    std::vector<std::string> positional;
    std::string journal_base;
    std::string journal_cur;
    std::string ts_base;
    std::string ts_cur;
    std::string markdown_path;
    double tol_bin = 0.0;
    report::Tolerances tol;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--journal" && i + 2 < args.size()) {
            journal_base = args[++i];
            journal_cur = args[++i];
        } else if (arg == "--timeseries" && i + 2 < args.size()) {
            ts_base = args[++i];
            ts_cur = args[++i];
        } else if (arg == "--tol-bin" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol_bin)) {
                return fail("bad --tol-bin value");
            }
        } else if (arg == "--tol-timer" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.timer_rel)) {
                return fail("bad --tol-timer value");
            }
        } else if (arg == "--tol-value" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.value_rel)) {
                return fail("bad --tol-value value");
            }
        } else if (arg == "--timer-floor" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.timer_floor_s)) {
                return fail("bad --timer-floor value");
            }
        } else if (arg == "--tol" && i + 1 < args.size()) {
            const std::string &spec = args[++i];
            const std::size_t eq = spec.find('=');
            double value = 0.0;
            if (eq == std::string::npos ||
                !parseDouble(spec.substr(eq + 1), value)) {
                return fail("bad --tol spec (want NAME=F): " + spec);
            }
            tol.overrides.emplace_back(spec.substr(0, eq), value);
        } else if (arg == "--ignore" && i + 1 < args.size()) {
            tol.ignore_prefixes.push_back(args[++i]);
        } else if (arg == "--markdown" && i + 1 < args.size()) {
            markdown_path = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown diff option: " + arg);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        return usage();
    }

    std::string error;
    report::Snapshot base;
    report::Snapshot cur;
    if (!report::loadSnapshot(positional[0], base, &error) ||
        !report::loadSnapshot(positional[1], cur, &error)) {
        return fail(error);
    }
    report::DiffResult diff = report::diffSnapshots(base, cur, tol);
    if (!journal_base.empty()) {
        report::JournalDoc jbase;
        report::JournalDoc jcur;
        if (!report::loadJournal(journal_base, jbase, &error) ||
            !report::loadJournal(journal_cur, jcur, &error)) {
            return fail(error);
        }
        diff = report::mergeDiffs(std::move(diff),
                                  report::diffJournals(jbase, jcur));
    }
    if (!ts_base.empty()) {
        report::TimeSeriesDoc tbase;
        report::TimeSeriesDoc tcur;
        if (!report::loadTimeSeries(ts_base, tbase, &error) ||
            !report::loadTimeSeries(ts_cur, tcur, &error)) {
            return fail(error);
        }
        diff = report::mergeDiffs(
            std::move(diff), report::diffTimeSeries(tbase, tcur, tol_bin));
    }

    if (markdown_path.empty()) {
        report::writeMarkdown(diff, positional[0], positional[1],
                              std::cout);
    } else {
        std::ofstream out(markdown_path);
        if (!out) {
            return fail("cannot write " + markdown_path);
        }
        report::writeMarkdown(diff, positional[0], positional[1], out);
        std::cerr << "kodan-report: wrote " << markdown_path << "\n";
    }
    return diff.hasRegression() ? 1 : 0;
}

/** Fold @p snapshot into @p into (sum counts/sums, max maxes). */
void
foldSnapshot(report::Snapshot &into, const report::Snapshot &snapshot)
{
    for (const report::MetricReading &m : snapshot.metrics) {
        bool merged = false;
        for (report::MetricReading &existing : into.metrics) {
            if (existing.name == m.name) {
                existing.count += m.count;
                existing.sum += m.sum;
                existing.max = std::max(existing.max, m.max);
                merged = true;
                break;
            }
        }
        if (!merged) {
            into.metrics.push_back(m);
        }
    }
}

int
runAggregate(const std::vector<std::string> &args)
{
    std::string name;
    std::string label = "latest";
    std::string out_path;
    std::vector<std::string> snapshots;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--name" && i + 1 < args.size()) {
            name = args[++i];
        } else if (arg == "--label" && i + 1 < args.size()) {
            label = args[++i];
        } else if (arg == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown aggregate option: " + arg);
        } else {
            snapshots.push_back(arg);
        }
    }
    if (name.empty() || snapshots.empty()) {
        return usage();
    }
    if (out_path.empty()) {
        out_path = "BENCH_" + name + ".json";
    }

    report::TrajectoryEntry entry;
    entry.label = label;
    std::string error;
    for (const std::string &path : snapshots) {
        report::Snapshot snapshot;
        if (!report::loadSnapshot(path, snapshot, &error)) {
            return fail(error);
        }
        foldSnapshot(entry.snapshot, snapshot);
    }
    std::sort(entry.snapshot.metrics.begin(), entry.snapshot.metrics.end(),
              [](const report::MetricReading &a,
                 const report::MetricReading &b) { return a.name < b.name; });
    if (!report::appendTrajectory(out_path, name, entry, &error)) {
        return fail(error);
    }
    std::cerr << "kodan-report: appended entry \"" << label << "\" ("
              << entry.snapshot.metrics.size() << " metric(s)) to "
              << out_path << "\n";
    return 0;
}

int
runTrajectory(const std::vector<std::string> &args)
{
    std::string format = "json";
    std::string out_path;
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--format" && i + 1 < args.size()) {
            format = args[++i];
        } else if (arg == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown trajectory option: " + arg);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 1) {
        return usage();
    }
    if (format != "json" && format != "csv") {
        return fail("bad --format (want json or csv): " + format);
    }

    std::ifstream file(positional[0], std::ios::binary);
    if (!file) {
        return fail("cannot open " + positional[0]);
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    report::Trajectory trajectory;
    std::string error;
    if (!report::parseTrajectory(buffer.str(), trajectory, &error)) {
        return fail(positional[0] + ": " + error);
    }

    const auto emit = [&](std::ostream &os) {
        if (format == "csv") {
            report::writeTrajectoryCsv(trajectory, os);
        } else {
            report::writeTrajectory(trajectory, os);
        }
    };
    if (out_path.empty()) {
        emit(std::cout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            return fail("cannot write " + out_path);
        }
        emit(out);
        std::cerr << "kodan-report: wrote " << out_path << "\n";
    }
    return 0;
}

int
runHealth(const std::vector<std::string> &args)
{
    std::vector<std::string> positional;
    std::string baseline_path;
    std::string journal_path;
    std::size_t top = 20;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--baseline" && i + 1 < args.size()) {
            baseline_path = args[++i];
        } else if (arg == "--journal" && i + 1 < args.size()) {
            journal_path = args[++i];
        } else if (arg == "--top" && i + 1 < args.size()) {
            top = static_cast<std::size_t>(
                std::strtoul(args[++i].c_str(), nullptr, 10));
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown health option: " + arg);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 1) {
        return usage();
    }

    std::string error;
    report::AlertsDoc doc;
    if (!report::loadAlerts(positional[0], doc, &error)) {
        return fail(error);
    }

    std::cout << "# kodan-report: health `" << positional[0] << "`\n\n"
              << "- alerts: " << doc.alerts.size() << " (" << doc.firing
              << " firing)\n";

    // Per-rule rollup: fired / still-firing / entities touched.
    struct RuleRollup
    {
        std::string rule;
        std::size_t fired = 0;
        std::size_t firing = 0;
        std::vector<std::int64_t> entities;
    };
    std::vector<RuleRollup> rollups;
    for (const report::AlertReading &alert : doc.alerts) {
        RuleRollup *rollup = nullptr;
        for (RuleRollup &existing : rollups) {
            if (existing.rule == alert.rule) {
                rollup = &existing;
                break;
            }
        }
        if (rollup == nullptr) {
            rollups.push_back({alert.rule, 0, 0, {}});
            rollup = &rollups.back();
        }
        ++rollup->fired;
        if (alert.state == "firing") {
            ++rollup->firing;
        }
        if (std::find(rollup->entities.begin(), rollup->entities.end(),
                      alert.entity) == rollup->entities.end()) {
            rollup->entities.push_back(alert.entity);
        }
    }
    if (!rollups.empty()) {
        std::cout << "\n| rule | fired | firing | entities |\n"
                  << "| --- | --- | --- | --- |\n";
        for (const RuleRollup &rollup : rollups) {
            std::cout << "| " << rollup.rule << " | " << rollup.fired
                      << " | " << rollup.firing << " | "
                      << rollup.entities.size() << " |\n";
        }
    }

    report::JournalDoc journal;
    const bool have_journal =
        !journal_path.empty() &&
        report::loadJournal(journal_path, journal, &error);
    if (!journal_path.empty() && !have_journal) {
        return fail(error);
    }

    std::cout << "\n";
    std::size_t shown = 0;
    for (const report::AlertReading &alert : doc.alerts) {
        if (shown++ >= top) {
            std::cout << "... " << (doc.alerts.size() - top)
                      << " more alert(s) not shown (--top)\n";
            break;
        }
        std::cout << "[" << alert.state << "] " << alert.rule << " "
                  << alert.kind << "/" << alert.entity << " bins "
                  << alert.first_bin << ".." << alert.last_bin
                  << " peak " << alert.peak << " last " << alert.last
                  << "\n";
        if (have_journal && alert.has_journal) {
            for (const report::JournalLine &event : journal.events) {
                if (event.region == alert.journal_region &&
                    event.slot == alert.journal_slot &&
                    event.ord >= alert.journal_ord_lo &&
                    event.ord <= alert.journal_ord_hi) {
                    std::cout << "    evidence: " << event.canonical
                              << "\n";
                }
            }
        }
    }

    if (!baseline_path.empty()) {
        report::AlertsDoc base;
        if (!report::loadAlerts(baseline_path, base, &error)) {
            return fail(error);
        }
        const report::DiffResult diff = report::diffAlerts(base, doc);
        std::cout << "\n";
        report::writeMarkdown(diff, baseline_path, positional[0],
                              std::cout);
        return diff.hasRegression() ? 1 : 0;
    }
    return 0;
}

int
runProfile(const std::vector<std::string> &args)
{
    const bool is_diff = !args.empty() && args[0] == "diff";
    std::vector<std::string> positional;
    std::size_t top = 20;
    bool assert_clean = false;
    report::ProfileTolerances tol;
    for (std::size_t i = is_diff ? 1 : 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--top" && i + 1 < args.size()) {
            top = static_cast<std::size_t>(
                std::strtoul(args[++i].c_str(), nullptr, 10));
        } else if (is_diff && arg == "--assert") {
            assert_clean = true;
        } else if (is_diff && arg == "--tol-calls" &&
                   i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.calls_rel)) {
                return fail("bad --tol-calls value");
            }
        } else if (is_diff && arg == "--tol-cost" &&
                   i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.cost_rel)) {
                return fail("bad --tol-cost value");
            }
        } else if (is_diff && arg == "--cost-floor" &&
                   i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.cost_floor_s)) {
                return fail("bad --cost-floor value");
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown profile option: " + arg);
        } else {
            positional.push_back(arg);
        }
    }

    std::string error;
    if (!is_diff) {
        if (positional.size() != 1) {
            return usage();
        }
        report::ProfileDoc doc;
        if (!report::loadProfile(positional[0], doc, &error)) {
            return fail(error);
        }
        report::writeProfileMarkdown(doc, positional[0], top, std::cout);
        return 0;
    }

    if (positional.size() != 2) {
        return usage();
    }
    report::ProfileDoc base;
    report::ProfileDoc cur;
    if (!report::loadProfile(positional[0], base, &error) ||
        !report::loadProfile(positional[1], cur, &error)) {
        return fail(error);
    }
    const report::ProfileDiffResult diff =
        report::diffProfiles(base, cur, tol);
    report::writeProfileDiffMarkdown(diff, positional[0], positional[1],
                                     top, std::cout);
    if (assert_clean && diff.findings.hasRegression()) {
        return 1;
    }
    return 0;
}

int
runLineage(const std::vector<std::string> &args)
{
    std::vector<std::string> positional;
    for (const std::string &arg : args) {
        if (!arg.empty() && arg[0] == '-') {
            return fail("unknown lineage option: " + arg);
        }
        positional.push_back(arg);
    }
    if (positional.size() != 1) {
        return usage();
    }

    namespace tm = kodan::telemetry;
    std::vector<tm::LineageSpan> spans;
    std::string error;
    if (!report::loadLineage(positional[0], spans, &error)) {
        return fail(error);
    }
    const std::vector<tm::FrameLineage> frames =
        tm::assembleLineage(spans);
    const tm::LineageStats stats = tm::summarizeLineage(frames);

    std::cout << "# kodan-report: lineage `" << positional[0] << "`\n\n"
              << "- frames: " << stats.frames << "\n"
              << "- downlinked: " << stats.downlinked << "\n"
              << "- mean end-to-end latency: " << stats.mean_end_to_end_s
              << " s (max " << stats.max_end_to_end_s << " s)\n"
              << "- mean data age at downlink: " << stats.mean_data_age_s
              << " s\n\n"
              << "| stage | mean wait (s) |\n| --- | --- |\n"
              << "| compute | " << stats.mean_compute_s << " |\n"
              << "| contact-wait | " << stats.mean_contact_wait_s
              << " |\n"
              << "| queue-wait | " << stats.mean_queue_wait_s << " |\n\n"
              << "Dominant stage: **" << stats.dominantStage() << "**\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        return usage();
    }
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "diff") {
        return runDiff(args);
    }
    if (command == "aggregate") {
        return runAggregate(args);
    }
    if (command == "trajectory") {
        return runTrajectory(args);
    }
    if (command == "lineage") {
        return runLineage(args);
    }
    if (command == "profile") {
        return runProfile(args);
    }
    if (command == "health") {
        return runHealth(args);
    }
    return usage();
}
