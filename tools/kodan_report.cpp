/**
 * @file
 * kodan-report — regression pipeline CLI over telemetry outputs.
 *
 * Subcommands:
 *
 *   kodan-report diff <base.json> <current.json>
 *       [--journal <base.jsonl> <current.jsonl>]
 *       [--tol-timer F] [--tol-value F] [--timer-floor SECONDS]
 *       [--tol NAME=F]... [--ignore PREFIX]...
 *       [--markdown PATH]
 *     Compares two metrics snapshots (writeMetricsJson output) and
 *     optionally two flight-recorder journals. Prints the markdown
 *     summary (to stdout, or PATH with --markdown). Exit status: 0 when
 *     no regression, 1 on regression, 2 on usage/parse errors.
 *
 *   kodan-report aggregate --name NAME [--label LABEL] [--out PATH]
 *       <snapshot.json>...
 *     Folds one or more metrics snapshots into one trajectory entry and
 *     appends it to the BENCH_<NAME>.json trajectory file (default
 *     PATH: BENCH_<NAME>.json in the working directory). Counters,
 *     counts, and sums add across snapshots; max takes the max. An
 *     existing entry with the same label is replaced.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "telemetry/report.hpp"

namespace report = kodan::telemetry::report;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  kodan-report diff <base.json> <current.json>\n"
           "      [--journal <base.jsonl> <current.jsonl>]\n"
           "      [--tol-timer F] [--tol-value F] [--timer-floor S]\n"
           "      [--tol NAME=F]... [--ignore PREFIX]... "
           "[--markdown PATH]\n"
           "  kodan-report aggregate --name NAME [--label LABEL]\n"
           "      [--out PATH] <snapshot.json>...\n";
    return 2;
}

int
fail(const std::string &message)
{
    std::cerr << "kodan-report: " << message << "\n";
    return 2;
}

bool
parseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0' && end != text.c_str();
}

int
runDiff(const std::vector<std::string> &args)
{
    std::vector<std::string> positional;
    std::string journal_base;
    std::string journal_cur;
    std::string markdown_path;
    report::Tolerances tol;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--journal" && i + 2 < args.size()) {
            journal_base = args[++i];
            journal_cur = args[++i];
        } else if (arg == "--tol-timer" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.timer_rel)) {
                return fail("bad --tol-timer value");
            }
        } else if (arg == "--tol-value" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.value_rel)) {
                return fail("bad --tol-value value");
            }
        } else if (arg == "--timer-floor" && i + 1 < args.size()) {
            if (!parseDouble(args[++i], tol.timer_floor_s)) {
                return fail("bad --timer-floor value");
            }
        } else if (arg == "--tol" && i + 1 < args.size()) {
            const std::string &spec = args[++i];
            const std::size_t eq = spec.find('=');
            double value = 0.0;
            if (eq == std::string::npos ||
                !parseDouble(spec.substr(eq + 1), value)) {
                return fail("bad --tol spec (want NAME=F): " + spec);
            }
            tol.overrides.emplace_back(spec.substr(0, eq), value);
        } else if (arg == "--ignore" && i + 1 < args.size()) {
            tol.ignore_prefixes.push_back(args[++i]);
        } else if (arg == "--markdown" && i + 1 < args.size()) {
            markdown_path = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown diff option: " + arg);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        return usage();
    }

    std::string error;
    report::Snapshot base;
    report::Snapshot cur;
    if (!report::loadSnapshot(positional[0], base, &error) ||
        !report::loadSnapshot(positional[1], cur, &error)) {
        return fail(error);
    }
    report::DiffResult diff = report::diffSnapshots(base, cur, tol);
    if (!journal_base.empty()) {
        report::JournalDoc jbase;
        report::JournalDoc jcur;
        if (!report::loadJournal(journal_base, jbase, &error) ||
            !report::loadJournal(journal_cur, jcur, &error)) {
            return fail(error);
        }
        diff = report::mergeDiffs(std::move(diff),
                                  report::diffJournals(jbase, jcur));
    }

    if (markdown_path.empty()) {
        report::writeMarkdown(diff, positional[0], positional[1],
                              std::cout);
    } else {
        std::ofstream out(markdown_path);
        if (!out) {
            return fail("cannot write " + markdown_path);
        }
        report::writeMarkdown(diff, positional[0], positional[1], out);
        std::cerr << "kodan-report: wrote " << markdown_path << "\n";
    }
    return diff.hasRegression() ? 1 : 0;
}

/** Fold @p snapshot into @p into (sum counts/sums, max maxes). */
void
foldSnapshot(report::Snapshot &into, const report::Snapshot &snapshot)
{
    for (const report::MetricReading &m : snapshot.metrics) {
        bool merged = false;
        for (report::MetricReading &existing : into.metrics) {
            if (existing.name == m.name) {
                existing.count += m.count;
                existing.sum += m.sum;
                existing.max = std::max(existing.max, m.max);
                merged = true;
                break;
            }
        }
        if (!merged) {
            into.metrics.push_back(m);
        }
    }
}

int
runAggregate(const std::vector<std::string> &args)
{
    std::string name;
    std::string label = "latest";
    std::string out_path;
    std::vector<std::string> snapshots;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--name" && i + 1 < args.size()) {
            name = args[++i];
        } else if (arg == "--label" && i + 1 < args.size()) {
            label = args[++i];
        } else if (arg == "--out" && i + 1 < args.size()) {
            out_path = args[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown aggregate option: " + arg);
        } else {
            snapshots.push_back(arg);
        }
    }
    if (name.empty() || snapshots.empty()) {
        return usage();
    }
    if (out_path.empty()) {
        out_path = "BENCH_" + name + ".json";
    }

    report::TrajectoryEntry entry;
    entry.label = label;
    std::string error;
    for (const std::string &path : snapshots) {
        report::Snapshot snapshot;
        if (!report::loadSnapshot(path, snapshot, &error)) {
            return fail(error);
        }
        foldSnapshot(entry.snapshot, snapshot);
    }
    std::sort(entry.snapshot.metrics.begin(), entry.snapshot.metrics.end(),
              [](const report::MetricReading &a,
                 const report::MetricReading &b) { return a.name < b.name; });
    if (!report::appendTrajectory(out_path, name, entry, &error)) {
        return fail(error);
    }
    std::cerr << "kodan-report: appended entry \"" << label << "\" ("
              << entry.snapshot.metrics.size() << " metric(s)) to "
              << out_path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        return usage();
    }
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "diff") {
        return runDiff(args);
    }
    if (command == "aggregate") {
        return runAggregate(args);
    }
    return usage();
}
