/**
 * @file
 * kodan-top — live mission view over the flight-recorder event stream.
 *
 *   kodan-top <journal.jsonl> [--follow] [--interval-ms N]
 *       [--metric NAME] [--width N] [--prefix P]
 *       [--profile <profile.json>]
 *
 * Tails a journal file — either a finished `--journal-out` export or
 * the live stream tap written by KODAN_JOURNAL_STREAM /
 * setJournalStreamPath — picks out the per-satellite sim-time bin
 * events (`<prefix>.satellite.bin`, emitted by the mission simulator)
 * and renders one sparkline row per satellite of the chosen per-bin
 * metric, plus totals.
 *
 * Modes:
 *  - default: read the whole file, render one frame, exit (pipeable);
 *  - --follow: poll the file for appended lines every --interval-ms
 *    (default 500), repainting in place until interrupted.
 *
 * Metrics (per-bin event fields): frames, processed, queued_bits,
 * bits, high_bits, dvd (default).
 *
 * When the journal carries `pipeline.ring.depth` events (the staged
 * data plane's per-burst ring occupancy, emitted under --stats), a
 * queue-depth pane follows the mission view: one sparkline per stage
 * ring lane, bars scaled to that ring's capacity. Feed it with e.g.
 *   bench_dataplane --stats --journal-out dp.journal.jsonl
 *   kodan-top dp.journal.jsonl
 *
 * When it carries `health.alert.fire` / `health.alert.resolve` events
 * (the fleet health plane's rule transitions), an alerts pane renders
 * last: firing alerts first, one line per (rule, entity) with its bin
 * span and latest offending value. Feed it with e.g.
 *   bench_health --journal-out health.journal.jsonl
 *   kodan-top health.journal.jsonl
 *
 * With --profile, a hot-spans pane renders last: the CPU profile
 * written by --profile-out / KODAN_PROF (top spans by task-clock with
 * relative-cost bars, plus the hottest sampled frames). The file is
 * re-read on every repaint under --follow, so pointing it at the
 * profile path of a run that restarts (or a wrapper that re-captures)
 * keeps the pane current. Feed it with e.g.
 *   bench_dataplane --journal-out dp.jsonl --profile-out dp.prof.json
 *   kodan-top dp.jsonl --profile dp.prof.json
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "telemetry/report.hpp"
#include "util/json.hpp"

namespace json = kodan::util::json;
namespace report = kodan::telemetry::report;

namespace {

constexpr const char *kSparkLevels[] = {"▁", "▂", "▃",
                                        "▄", "▅", "▆",
                                        "▇", "█"};
constexpr int kSparkLevelCount = 8;

int
usage()
{
    std::cerr << "usage:\n"
                 "  kodan-top <journal.jsonl> [--follow]\n"
                 "      [--interval-ms N] [--metric NAME] [--width N]\n"
                 "      [--prefix P] [--profile <profile.json>]\n"
                 "metrics: frames processed queued_bits bits high_bits "
                 "dvd\n";
    return 2;
}

int
fail(const std::string &message)
{
    std::cerr << "kodan-top: " << message << "\n";
    return 2;
}

/** Aggregated view of the bin events seen so far. */
struct MissionView
{
    /** satellite -> bin index -> metric value. */
    std::map<std::int64_t, std::map<std::int64_t, double>> per_satellite;
    /** satellite -> latest whole-satellite summary fields. */
    std::map<std::int64_t, double> frames_total;
    std::uint64_t events_seen = 0;
    double bin_s = 0.0;

    std::int64_t minBin() const
    {
        std::int64_t lo = 0;
        bool first = true;
        for (const auto &[sat, bins] : per_satellite) {
            if (!bins.empty() &&
                (first || bins.begin()->first < lo)) {
                lo = bins.begin()->first;
                first = false;
            }
        }
        return lo;
    }

    std::int64_t maxBin() const
    {
        std::int64_t hi = 0;
        bool first = true;
        for (const auto &[sat, bins] : per_satellite) {
            if (!bins.empty() &&
                (first || bins.rbegin()->first > hi)) {
                hi = bins.rbegin()->first;
                first = false;
            }
        }
        return hi;
    }
};

/** Feed one parsed journal line into the view. */
void
ingest(MissionView &view, const json::Value &event,
       const std::string &metric, const std::string &suffix)
{
    const std::string type = event.stringOr("type", "");
    if (type.size() < suffix.size() ||
        type.compare(type.size() - suffix.size(), suffix.size(),
                     suffix) != 0) {
        return;
    }
    const json::Value *fields = event.find("fields");
    if (fields == nullptr) {
        return;
    }
    const auto sat =
        static_cast<std::int64_t>(fields->numberOr("sat", -1.0));
    const auto bin =
        static_cast<std::int64_t>(fields->numberOr("bin", 0.0));
    if (sat < 0) {
        return;
    }
    view.per_satellite[sat][bin] = fields->numberOr(metric, 0.0);
    view.frames_total[sat] += fields->numberOr("frames", 0.0);
    ++view.events_seen;
    const double t_s = fields->numberOr("t_s", 0.0);
    if (bin != 0 && t_s != 0.0) {
        view.bin_s = t_s / static_cast<double>(bin);
    }
}

/** Depth trace of one stage-feeding ring lane. */
struct LaneDepths
{
    /** Arrival index -> occupancy observed at that burst dequeue. */
    std::map<std::int64_t, double> samples;
    std::int64_t next = 0;
    double capacity = 0.0;
    double last = 0.0;
    double max_depth = 0.0;
};

/** Aggregated view of the pipeline.ring.depth events seen so far. */
struct QueueView
{
    /** (ring name, lane) -> depth trace. */
    std::map<std::pair<std::string, std::int64_t>, LaneDepths> lanes;
    std::uint64_t events_seen = 0;
};

/** Pipeline position of a stage ring, for display ordering. */
int
stageRank(const std::string &ring)
{
    if (ring == "free") {
        return 0;
    }
    if (ring == "tile_classify") {
        return 1;
    }
    if (ring == "infer") {
        return 2;
    }
    if (ring == "elide") {
        return 3;
    }
    if (ring == "record") {
        return 4;
    }
    return 5;
}

/** Feed one parsed journal line into the queue view. */
void
ingestRing(QueueView &view, const json::Value &event)
{
    if (event.stringOr("type", "") != "pipeline.ring.depth") {
        return;
    }
    const json::Value *fields = event.find("fields");
    if (fields == nullptr) {
        return;
    }
    const std::string ring = fields->stringOr("ring", "");
    if (ring.empty()) {
        return;
    }
    const auto lane =
        static_cast<std::int64_t>(fields->numberOr("lane", 0.0));
    LaneDepths &trace = view.lanes[{ring, lane}];
    const double depth = fields->numberOr("depth", 0.0);
    trace.samples[trace.next++] = depth;
    trace.capacity = fields->numberOr("capacity", trace.capacity);
    trace.last = depth;
    trace.max_depth = std::max(trace.max_depth, depth);
    // Bound --follow memory: only a screenful of history is rendered.
    while (trace.samples.size() > 4096) {
        trace.samples.erase(trace.samples.begin());
    }
    ++view.events_seen;
}

/** Latest state of one (rule, entity) alert from the health plane. */
struct AlertRow
{
    bool firing = false;
    std::int64_t first_bin = 0;
    std::int64_t last_bin = 0;
    double value = 0.0;
    std::uint64_t fired = 0; ///< fire transitions seen
};

/** Aggregated view of health.alert.* journal events seen so far. */
struct AlertView
{
    /** (rule, entity_kind, entity) -> latest alert state. */
    std::map<std::tuple<std::string, std::string, std::int64_t>, AlertRow>
        rows;
    std::uint64_t events_seen = 0;

    std::size_t firingCount() const
    {
        std::size_t n = 0;
        for (const auto &[key, row] : rows) {
            n += row.firing ? 1 : 0;
        }
        return n;
    }
};

/** Feed one parsed journal line into the alert view. */
void
ingestAlert(AlertView &view, const json::Value &event)
{
    const std::string type = event.stringOr("type", "");
    const bool fire = type == "health.alert.fire";
    if (!fire && type != "health.alert.resolve") {
        return;
    }
    const json::Value *fields = event.find("fields");
    if (fields == nullptr) {
        return;
    }
    const std::string rule = fields->stringOr("rule", "");
    if (rule.empty()) {
        return;
    }
    const auto entity =
        static_cast<std::int64_t>(fields->numberOr("entity", -1.0));
    const auto bin =
        static_cast<std::int64_t>(fields->numberOr("bin", 0.0));
    AlertRow &row =
        view.rows[{rule, fields->stringOr("entity_kind", "?"), entity}];
    if (fire) {
        row.first_bin = row.fired == 0 ? bin : row.first_bin;
        ++row.fired;
    }
    row.firing = fire;
    row.last_bin = bin;
    row.value = fields->numberOr("value", 0.0);
    ++view.events_seen;
}

/** Alerts pane: firing alerts first, then resolved, each naming the
 *  rule, the entity, the bin span, and the latest observed value. */
void
renderAlerts(const AlertView &view, std::ostream &os)
{
    if (view.rows.empty()) {
        return;
    }
    os << "health alerts — " << view.firingCount() << " firing, "
       << view.rows.size() << " total (" << view.events_seen
       << " event(s))\n";
    std::vector<const std::pair<
        const std::tuple<std::string, std::string, std::int64_t>,
        AlertRow> *>
        rows;
    for (const auto &entry : view.rows) {
        rows.push_back(&entry);
    }
    std::sort(rows.begin(), rows.end(), [](const auto *a, const auto *b) {
        if (a->second.firing != b->second.firing) {
            return a->second.firing; // firing above resolved
        }
        return a->first < b->first;
    });
    for (const auto *row : rows) {
        const auto &[rule, kind, entity] = row->first;
        const AlertRow &alert = row->second;
        os << "  " << (alert.firing ? "[firing  ]" : "[resolved]") << " "
           << rule << " " << kind << "/" << entity << " bins "
           << alert.first_bin << ".." << alert.last_bin << " value "
           << alert.value;
        if (alert.fired > 1) {
            os << " (fired " << alert.fired << "x)";
        }
        os << "\n";
    }
}

/** Hot-spans pane: top spans by task-clock with relative-cost bars,
 *  then the hottest sampled frames by self time. */
void
renderProfile(const report::ProfileDoc &doc, const std::string &path,
              int width, std::ostream &os)
{
    os << "hot spans — " << path << " (" << doc.samples
       << " sample(s) @ " << doc.period_us << " us, counters: "
       << doc.span_source << ")\n";
    std::vector<report::ProfileSpanRow> rows = doc.spans;
    std::sort(rows.begin(), rows.end(),
              [](const report::ProfileSpanRow &a,
                 const report::ProfileSpanRow &b) {
                  if (a.task_clock_ns != b.task_clock_ns) {
                      return a.task_clock_ns > b.task_clock_ns;
                  }
                  return a.name < b.name;
              });
    const double peak_ns =
        rows.empty() ? 0.0 : static_cast<double>(rows[0].task_clock_ns);
    const int bar_width = std::min(24, std::max(4, width / 3));
    std::size_t shown = 0;
    for (const report::ProfileSpanRow &row : rows) {
        if (shown++ >= 8) {
            os << "  ... " << rows.size() - 8 << " more span(s)\n";
            break;
        }
        const int cells =
            peak_ns <= 0.0
                ? 0
                : static_cast<int>(std::lround(
                      static_cast<double>(row.task_clock_ns) / peak_ns *
                      bar_width));
        std::string bar;
        for (int c = 0; c < bar_width; ++c) {
            bar += c < cells ? kSparkLevels[kSparkLevelCount - 1] : "·";
        }
        std::ostringstream label;
        label << row.name;
        os << "  " << label.str()
           << std::string(label.str().size() < 28
                              ? 28 - label.str().size()
                              : 1,
                          ' ')
           << "|" << bar << "| "
           << static_cast<double>(row.task_clock_ns) * 1e-9 << " s, "
           << row.calls << " call(s)";
        if (row.cycles > 0) {
            os << ", IPC "
               << static_cast<double>(row.instructions) /
                      static_cast<double>(row.cycles);
        }
        os << "\n";
    }
    if (!doc.frames.empty()) {
        os << "  hot frames:";
        std::size_t frames_shown = 0;
        for (const report::ProfileFrame &frame : doc.frames) {
            if (frames_shown++ >= 5) {
                break;
            }
            os << (frames_shown == 1 ? " " : "; ") << frame.name << " ("
               << frame.self << ")";
        }
        os << "\n";
    }
}

/** One sparkline row over [lo, hi] bins, at most @p width cells. */
std::string
sparkline(const std::map<std::int64_t, double> &bins, std::int64_t lo,
          std::int64_t hi, int width, double peak)
{
    const std::int64_t span = hi - lo + 1;
    const std::int64_t cells =
        std::min<std::int64_t>(span, std::max(1, width));
    std::string out;
    for (std::int64_t c = 0; c < cells; ++c) {
        // Cell c covers bins [lo + c*span/cells, lo + (c+1)*span/cells).
        const std::int64_t b0 = lo + c * span / cells;
        const std::int64_t b1 = lo + (c + 1) * span / cells;
        double value = 0.0;
        bool seen = false;
        for (std::int64_t b = b0; b < std::max(b0 + 1, b1); ++b) {
            const auto it = bins.find(b);
            if (it != bins.end()) {
                value = std::max(value, it->second);
                seen = true;
            }
        }
        if (!seen) {
            out += "·"; // middle dot: no data in this cell
        } else if (peak <= 0.0) {
            out += kSparkLevels[0];
        } else {
            const int level = std::min(
                kSparkLevelCount - 1,
                static_cast<int>(std::floor(
                    value / peak * static_cast<double>(kSparkLevelCount))));
            out += kSparkLevels[std::max(0, level)];
        }
    }
    return out;
}

/** Queue-depth pane: one row per stage ring lane, in pipeline order,
 *  bars scaled to that ring's capacity (a full bar means a full ring,
 *  i.e. the downstream stage is the bottleneck). */
void
renderQueues(const QueueView &view, int width, std::ostream &os)
{
    if (view.lanes.empty()) {
        return;
    }
    os << "stage ring occupancy at burst dequeue — last " << width
       << " sample(s), bars scaled to ring capacity ("
       << view.events_seen << " event(s))\n";
    std::vector<const std::pair<const std::pair<std::string, std::int64_t>,
                                LaneDepths> *>
        rows;
    for (const auto &entry : view.lanes) {
        rows.push_back(&entry);
    }
    std::sort(rows.begin(), rows.end(), [](const auto *a, const auto *b) {
        const int ra = stageRank(a->first.first);
        const int rb = stageRank(b->first.first);
        if (ra != rb) {
            return ra < rb;
        }
        return a->first < b->first;
    });
    for (const auto *row : rows) {
        const auto &[key, trace] = *row;
        const std::int64_t hi = trace.next - 1;
        const std::int64_t lo =
            std::max<std::int64_t>(0, trace.next - width);
        std::ostringstream label;
        label << key.first << "/" << key.second;
        os << "  " << label.str()
           << std::string(
                  label.str().size() < 16 ? 16 - label.str().size() : 1,
                  ' ')
           << "|" << sparkline(trace.samples, lo, hi, width,
                               trace.capacity)
           << "| last " << trace.last << "/" << trace.capacity << " max "
           << trace.max_depth << "\n";
    }
}

/** Re-read + render the --profile pane (ignored when path is empty). */
void
renderProfilePane(const std::string &profile_path, int width,
                  std::ostream &os)
{
    if (profile_path.empty()) {
        return;
    }
    report::ProfileDoc doc;
    std::string error;
    if (report::loadProfile(profile_path, doc, &error)) {
        renderProfile(doc, profile_path, width, os);
    } else {
        os << "hot spans — waiting for profile (" << error << ")\n";
    }
}

void
render(const MissionView &view, const QueueView &queues,
       const AlertView &alerts, const std::string &metric,
       const std::string &profile_path, int width, bool follow,
       std::ostream &os)
{
    if (follow) {
        os << "\033[H\033[2J"; // home + clear
    }
    os << "kodan-top — per-satellite `" << metric << "` by sim-time bin";
    if (view.bin_s > 0.0) {
        os << " (" << view.bin_s << " s/bin)";
    }
    os << "\n";
    if (view.per_satellite.empty()) {
        if (queues.lanes.empty() && alerts.rows.empty()) {
            os << "  (no satellite.bin events yet — run a mission with "
                  "--journal-out or KODAN_JOURNAL_STREAM)\n";
        }
        renderQueues(queues, width, os);
        renderAlerts(alerts, os);
        renderProfilePane(profile_path, width, os);
        os.flush();
        return;
    }
    const std::int64_t lo = view.minBin();
    const std::int64_t hi = view.maxBin();
    double peak = 0.0;
    for (const auto &[sat, bins] : view.per_satellite) {
        for (const auto &[bin, value] : bins) {
            peak = std::max(peak, value);
        }
    }
    os << "bins " << lo << ".." << hi << ", peak " << peak << ", "
       << view.events_seen << " event(s)\n";
    for (const auto &[sat, bins] : view.per_satellite) {
        double last = 0.0;
        double total = 0.0;
        for (const auto &[bin, value] : bins) {
            last = value;
            total += value;
        }
        os << "  sat " << sat << " |"
           << sparkline(bins, lo, hi, width, peak) << "| last " << last
           << " total " << total;
        const auto frames = view.frames_total.find(sat);
        if (frames != view.frames_total.end()) {
            os << " frames " << frames->second;
        }
        os << "\n";
    }
    renderQueues(queues, width, os);
    renderAlerts(alerts, os);
    renderProfilePane(profile_path, width, os);
    os.flush();
}

/** Incremental JSONL reader: remembers the file offset and carries any
 *  partial trailing line between polls. */
struct Tail
{
    std::string path;
    std::streamoff offset = 0;
    std::string partial;

    /** Read newly appended complete lines. */
    std::vector<std::string> poll()
    {
        std::vector<std::string> lines;
        std::ifstream file(path, std::ios::binary);
        if (!file) {
            return lines;
        }
        file.seekg(0, std::ios::end);
        const std::streamoff size = file.tellg();
        if (size <= offset) {
            return lines;
        }
        file.seekg(offset);
        std::string chunk(static_cast<std::size_t>(size - offset), '\0');
        file.read(chunk.data(),
                  static_cast<std::streamsize>(chunk.size()));
        offset = size;
        partial += chunk;
        std::size_t start = 0;
        for (std::size_t i = 0; i < partial.size(); ++i) {
            if (partial[i] == '\n') {
                lines.push_back(partial.substr(start, i - start));
                start = i + 1;
            }
        }
        partial.erase(0, start);
        return lines;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string metric = "dvd";
    std::string prefix;
    std::string profile_path;
    bool follow = false;
    int interval_ms = 500;
    int width = 64;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--follow") {
            follow = true;
        } else if (arg == "--interval-ms" && i + 1 < argc) {
            interval_ms = std::atoi(argv[++i]);
            if (interval_ms <= 0) {
                return fail("bad --interval-ms value");
            }
        } else if (arg == "--metric" && i + 1 < argc) {
            metric = argv[++i];
        } else if (arg == "--width" && i + 1 < argc) {
            width = std::atoi(argv[++i]);
            if (width <= 0) {
                return fail("bad --width value");
            }
        } else if (arg == "--prefix" && i + 1 < argc) {
            prefix = argv[++i];
        } else if (arg == "--profile" && i + 1 < argc) {
            profile_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown option: " + arg);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty()) {
        return usage();
    }
    // Match events by type suffix so any telemetry_prefix works; an
    // explicit --prefix narrows to "<prefix>.satellite.bin" exactly.
    const std::string suffix = prefix.empty()
                                   ? std::string(".satellite.bin")
                                   : prefix + ".satellite.bin";

    MissionView view;
    QueueView queues;
    AlertView alerts;
    Tail tail{path, 0, ""};

    const auto ingestLines = [&](const std::vector<std::string> &lines) {
        for (const std::string &line : lines) {
            if (line.empty() ||
                line.find("\"kodan_journal\"") != std::string::npos) {
                continue; // export header
            }
            json::Value event;
            if (json::parse(line, event, nullptr)) {
                ingest(view, event, metric, suffix);
                ingestRing(queues, event);
                ingestAlert(alerts, event);
            }
        }
    };

    if (!follow) {
        std::ifstream file(path, std::ios::binary);
        if (!file) {
            return fail("cannot open " + path);
        }
        ingestLines(tail.poll());
        render(view, queues, alerts, metric, profile_path, width, false,
               std::cout);
        return 0;
    }

    for (;;) {
        ingestLines(tail.poll());
        render(view, queues, alerts, metric, profile_path, width, true,
               std::cout);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
