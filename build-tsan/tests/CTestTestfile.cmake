# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build-tsan/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_orbit "/root/repo/build-tsan/tests/test_orbit")
set_tests_properties(test_orbit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ground "/root/repo/build-tsan/tests/test_ground")
set_tests_properties(test_ground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sense "/root/repo/build-tsan/tests/test_sense")
set_tests_properties(test_sense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;29;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build-tsan/tests/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;35;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ml "/root/repo/build-tsan/tests/test_ml")
set_tests_properties(test_ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;40;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hw "/root/repo/build-tsan/tests/test_hw")
set_tests_properties(test_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;47;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build-tsan/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;50;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-tsan/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;54;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sun "/root/repo/build-tsan/tests/test_sun")
set_tests_properties(test_sun PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;68;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_props "/root/repo/build-tsan/tests/test_props")
set_tests_properties(test_props PROPERTIES  LABELS "parallel" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;71;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_failures "/root/repo/build-tsan/tests/test_failures")
set_tests_properties(test_failures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;74;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_thread_pool "/root/repo/build-tsan/tests/test_thread_pool")
set_tests_properties(test_thread_pool PROPERTIES  LABELS "parallel" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;77;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parallel_equivalence "/root/repo/build-tsan/tests/test_parallel_equivalence")
set_tests_properties(test_parallel_equivalence PROPERTIES  LABELS "parallel" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;80;kodan_test;/root/repo/tests/CMakeLists.txt;0;")
