# Empty dependencies file for test_props.
# This may be replaced when dependencies are built.
