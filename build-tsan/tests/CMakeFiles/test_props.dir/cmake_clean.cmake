file(REMOVE_RECURSE
  "CMakeFiles/test_props.dir/props/test_properties.cpp.o"
  "CMakeFiles/test_props.dir/props/test_properties.cpp.o.d"
  "test_props"
  "test_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
