# Empty dependencies file for test_ground.
# This may be replaced when dependencies are built.
