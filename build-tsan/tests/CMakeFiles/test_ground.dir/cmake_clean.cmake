file(REMOVE_RECURSE
  "CMakeFiles/test_ground.dir/ground/test_contact.cpp.o"
  "CMakeFiles/test_ground.dir/ground/test_contact.cpp.o.d"
  "CMakeFiles/test_ground.dir/ground/test_downlink.cpp.o"
  "CMakeFiles/test_ground.dir/ground/test_downlink.cpp.o.d"
  "CMakeFiles/test_ground.dir/ground/test_station.cpp.o"
  "CMakeFiles/test_ground.dir/ground/test_station.cpp.o.d"
  "test_ground"
  "test_ground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
