file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_deployment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_deployment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_engine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_engine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_evaluate.cpp.o"
  "CMakeFiles/test_core.dir/core/test_evaluate.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_io.cpp.o"
  "CMakeFiles/test_core.dir/core/test_io.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_measurement.cpp.o"
  "CMakeFiles/test_core.dir/core/test_measurement.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_partition.cpp.o"
  "CMakeFiles/test_core.dir/core/test_partition.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pca_partition.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pca_partition.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_selection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_selection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_specialize.cpp.o"
  "CMakeFiles/test_core.dir/core/test_specialize.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_transformer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_transformer.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
