
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_deployment.cpp" "tests/CMakeFiles/test_core.dir/core/test_deployment.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_deployment.cpp.o.d"
  "/root/repo/tests/core/test_engine.cpp" "tests/CMakeFiles/test_core.dir/core/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_engine.cpp.o.d"
  "/root/repo/tests/core/test_evaluate.cpp" "tests/CMakeFiles/test_core.dir/core/test_evaluate.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_evaluate.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/test_core.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_io.cpp" "tests/CMakeFiles/test_core.dir/core/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_io.cpp.o.d"
  "/root/repo/tests/core/test_measurement.cpp" "tests/CMakeFiles/test_core.dir/core/test_measurement.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_measurement.cpp.o.d"
  "/root/repo/tests/core/test_partition.cpp" "tests/CMakeFiles/test_core.dir/core/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_partition.cpp.o.d"
  "/root/repo/tests/core/test_pca_partition.cpp" "tests/CMakeFiles/test_core.dir/core/test_pca_partition.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pca_partition.cpp.o.d"
  "/root/repo/tests/core/test_runtime.cpp" "tests/CMakeFiles/test_core.dir/core/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "/root/repo/tests/core/test_selection.cpp" "tests/CMakeFiles/test_core.dir/core/test_selection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_selection.cpp.o.d"
  "/root/repo/tests/core/test_specialize.cpp" "tests/CMakeFiles/test_core.dir/core/test_specialize.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_specialize.cpp.o.d"
  "/root/repo/tests/core/test_transformer.cpp" "tests/CMakeFiles/test_core.dir/core/test_transformer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/kodan_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/kodan_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ground/CMakeFiles/kodan_ground.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sense/CMakeFiles/kodan_sense.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/kodan_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/kodan_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/kodan_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/orbit/CMakeFiles/kodan_orbit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
