# Empty compiler generated dependencies file for test_ml.
# This may be replaced when dependencies are built.
