file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_confusion.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_confusion.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_kmeans.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_kmeans.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_matrix.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_matrix.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_mlp.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_mlp.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_transforms.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_transforms.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
