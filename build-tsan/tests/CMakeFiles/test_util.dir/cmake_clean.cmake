file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_log.cpp.o"
  "CMakeFiles/test_util.dir/util/test_log.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_noise.cpp.o"
  "CMakeFiles/test_util.dir/util/test_noise.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
