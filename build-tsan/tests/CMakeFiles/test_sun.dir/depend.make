# Empty dependencies file for test_sun.
# This may be replaced when dependencies are built.
