file(REMOVE_RECURSE
  "CMakeFiles/test_sun.dir/orbit/test_sun.cpp.o"
  "CMakeFiles/test_sun.dir/orbit/test_sun.cpp.o.d"
  "test_sun"
  "test_sun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
