# Empty dependencies file for test_sense.
# This may be replaced when dependencies are built.
