
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sense/test_camera.cpp" "tests/CMakeFiles/test_sense.dir/sense/test_camera.cpp.o" "gcc" "tests/CMakeFiles/test_sense.dir/sense/test_camera.cpp.o.d"
  "/root/repo/tests/sense/test_capture.cpp" "tests/CMakeFiles/test_sense.dir/sense/test_capture.cpp.o" "gcc" "tests/CMakeFiles/test_sense.dir/sense/test_capture.cpp.o.d"
  "/root/repo/tests/sense/test_daylight.cpp" "tests/CMakeFiles/test_sense.dir/sense/test_daylight.cpp.o" "gcc" "tests/CMakeFiles/test_sense.dir/sense/test_daylight.cpp.o.d"
  "/root/repo/tests/sense/test_wrs.cpp" "tests/CMakeFiles/test_sense.dir/sense/test_wrs.cpp.o" "gcc" "tests/CMakeFiles/test_sense.dir/sense/test_wrs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/kodan_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/kodan_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ground/CMakeFiles/kodan_ground.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sense/CMakeFiles/kodan_sense.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/kodan_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/kodan_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/kodan_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/orbit/CMakeFiles/kodan_orbit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
