file(REMOVE_RECURSE
  "CMakeFiles/test_sense.dir/sense/test_camera.cpp.o"
  "CMakeFiles/test_sense.dir/sense/test_camera.cpp.o.d"
  "CMakeFiles/test_sense.dir/sense/test_capture.cpp.o"
  "CMakeFiles/test_sense.dir/sense/test_capture.cpp.o.d"
  "CMakeFiles/test_sense.dir/sense/test_daylight.cpp.o"
  "CMakeFiles/test_sense.dir/sense/test_daylight.cpp.o.d"
  "CMakeFiles/test_sense.dir/sense/test_wrs.cpp.o"
  "CMakeFiles/test_sense.dir/sense/test_wrs.cpp.o.d"
  "test_sense"
  "test_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
