file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_equivalence.dir/core/test_parallel_equivalence.cpp.o"
  "CMakeFiles/test_parallel_equivalence.dir/core/test_parallel_equivalence.cpp.o.d"
  "test_parallel_equivalence"
  "test_parallel_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
