# Empty dependencies file for test_parallel_equivalence.
# This may be replaced when dependencies are built.
