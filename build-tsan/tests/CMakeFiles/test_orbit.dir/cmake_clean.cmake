file(REMOVE_RECURSE
  "CMakeFiles/test_orbit.dir/orbit/test_earth.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/test_earth.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/test_elements.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/test_elements.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/test_propagator.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/test_propagator.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/test_vec3.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/test_vec3.cpp.o.d"
  "CMakeFiles/test_orbit.dir/orbit/test_walker.cpp.o"
  "CMakeFiles/test_orbit.dir/orbit/test_walker.cpp.o.d"
  "test_orbit"
  "test_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
