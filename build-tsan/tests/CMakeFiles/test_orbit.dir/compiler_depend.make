# Empty compiler generated dependencies file for test_orbit.
# This may be replaced when dependencies are built.
