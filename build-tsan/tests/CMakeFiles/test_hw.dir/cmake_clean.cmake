file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_target.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_target.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
