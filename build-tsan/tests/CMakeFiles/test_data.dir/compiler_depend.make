# Empty compiler generated dependencies file for test_data.
# This may be replaced when dependencies are built.
