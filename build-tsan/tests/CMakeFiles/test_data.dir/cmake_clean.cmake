file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_geomodel.cpp.o"
  "CMakeFiles/test_data.dir/data/test_geomodel.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_sample.cpp.o"
  "CMakeFiles/test_data.dir/data/test_sample.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_tiler.cpp.o"
  "CMakeFiles/test_data.dir/data/test_tiler.cpp.o.d"
  "test_data"
  "test_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
