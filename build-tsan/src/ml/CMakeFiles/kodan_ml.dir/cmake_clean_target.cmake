file(REMOVE_RECURSE
  "libkodan_ml.a"
)
