# Empty dependencies file for kodan_ml.
# This may be replaced when dependencies are built.
