
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/confusion.cpp" "src/ml/CMakeFiles/kodan_ml.dir/confusion.cpp.o" "gcc" "src/ml/CMakeFiles/kodan_ml.dir/confusion.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/kodan_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/kodan_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/kodan_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/kodan_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/kodan_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/kodan_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/transforms.cpp" "src/ml/CMakeFiles/kodan_ml.dir/transforms.cpp.o" "gcc" "src/ml/CMakeFiles/kodan_ml.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
