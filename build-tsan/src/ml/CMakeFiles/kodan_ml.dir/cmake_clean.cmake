file(REMOVE_RECURSE
  "CMakeFiles/kodan_ml.dir/confusion.cpp.o"
  "CMakeFiles/kodan_ml.dir/confusion.cpp.o.d"
  "CMakeFiles/kodan_ml.dir/kmeans.cpp.o"
  "CMakeFiles/kodan_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/kodan_ml.dir/matrix.cpp.o"
  "CMakeFiles/kodan_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/kodan_ml.dir/mlp.cpp.o"
  "CMakeFiles/kodan_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/kodan_ml.dir/transforms.cpp.o"
  "CMakeFiles/kodan_ml.dir/transforms.cpp.o.d"
  "libkodan_ml.a"
  "libkodan_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
