file(REMOVE_RECURSE
  "CMakeFiles/kodan_core.dir/engine.cpp.o"
  "CMakeFiles/kodan_core.dir/engine.cpp.o.d"
  "CMakeFiles/kodan_core.dir/evaluate.cpp.o"
  "CMakeFiles/kodan_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/kodan_core.dir/io.cpp.o"
  "CMakeFiles/kodan_core.dir/io.cpp.o.d"
  "CMakeFiles/kodan_core.dir/partition.cpp.o"
  "CMakeFiles/kodan_core.dir/partition.cpp.o.d"
  "CMakeFiles/kodan_core.dir/runtime.cpp.o"
  "CMakeFiles/kodan_core.dir/runtime.cpp.o.d"
  "CMakeFiles/kodan_core.dir/selection.cpp.o"
  "CMakeFiles/kodan_core.dir/selection.cpp.o.d"
  "CMakeFiles/kodan_core.dir/specialize.cpp.o"
  "CMakeFiles/kodan_core.dir/specialize.cpp.o.d"
  "CMakeFiles/kodan_core.dir/transformer.cpp.o"
  "CMakeFiles/kodan_core.dir/transformer.cpp.o.d"
  "CMakeFiles/kodan_core.dir/types.cpp.o"
  "CMakeFiles/kodan_core.dir/types.cpp.o.d"
  "libkodan_core.a"
  "libkodan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
