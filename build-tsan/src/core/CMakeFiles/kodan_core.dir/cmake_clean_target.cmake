file(REMOVE_RECURSE
  "libkodan_core.a"
)
