# Empty compiler generated dependencies file for kodan_core.
# This may be replaced when dependencies are built.
