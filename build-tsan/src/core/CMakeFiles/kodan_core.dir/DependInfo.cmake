
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/kodan_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/evaluate.cpp" "src/core/CMakeFiles/kodan_core.dir/evaluate.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/evaluate.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/kodan_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/io.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/kodan_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/kodan_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/kodan_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/specialize.cpp" "src/core/CMakeFiles/kodan_core.dir/specialize.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/specialize.cpp.o.d"
  "/root/repo/src/core/transformer.cpp" "src/core/CMakeFiles/kodan_core.dir/transformer.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/transformer.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/kodan_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/kodan_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/data/CMakeFiles/kodan_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/kodan_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/kodan_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sense/CMakeFiles/kodan_sense.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/orbit/CMakeFiles/kodan_orbit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
