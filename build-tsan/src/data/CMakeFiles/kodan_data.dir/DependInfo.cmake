
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/kodan_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/kodan_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/geomodel.cpp" "src/data/CMakeFiles/kodan_data.dir/geomodel.cpp.o" "gcc" "src/data/CMakeFiles/kodan_data.dir/geomodel.cpp.o.d"
  "/root/repo/src/data/sample.cpp" "src/data/CMakeFiles/kodan_data.dir/sample.cpp.o" "gcc" "src/data/CMakeFiles/kodan_data.dir/sample.cpp.o.d"
  "/root/repo/src/data/tiler.cpp" "src/data/CMakeFiles/kodan_data.dir/tiler.cpp.o" "gcc" "src/data/CMakeFiles/kodan_data.dir/tiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/orbit/CMakeFiles/kodan_orbit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
