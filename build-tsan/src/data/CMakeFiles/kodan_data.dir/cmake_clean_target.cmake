file(REMOVE_RECURSE
  "libkodan_data.a"
)
