file(REMOVE_RECURSE
  "CMakeFiles/kodan_data.dir/generator.cpp.o"
  "CMakeFiles/kodan_data.dir/generator.cpp.o.d"
  "CMakeFiles/kodan_data.dir/geomodel.cpp.o"
  "CMakeFiles/kodan_data.dir/geomodel.cpp.o.d"
  "CMakeFiles/kodan_data.dir/sample.cpp.o"
  "CMakeFiles/kodan_data.dir/sample.cpp.o.d"
  "CMakeFiles/kodan_data.dir/tiler.cpp.o"
  "CMakeFiles/kodan_data.dir/tiler.cpp.o.d"
  "libkodan_data.a"
  "libkodan_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
