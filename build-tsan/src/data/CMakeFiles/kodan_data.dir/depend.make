# Empty dependencies file for kodan_data.
# This may be replaced when dependencies are built.
