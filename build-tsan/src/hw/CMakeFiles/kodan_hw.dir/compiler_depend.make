# Empty compiler generated dependencies file for kodan_hw.
# This may be replaced when dependencies are built.
