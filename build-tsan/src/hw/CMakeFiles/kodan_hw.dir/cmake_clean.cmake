file(REMOVE_RECURSE
  "CMakeFiles/kodan_hw.dir/target.cpp.o"
  "CMakeFiles/kodan_hw.dir/target.cpp.o.d"
  "libkodan_hw.a"
  "libkodan_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
