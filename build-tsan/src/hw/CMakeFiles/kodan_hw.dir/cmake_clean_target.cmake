file(REMOVE_RECURSE
  "libkodan_hw.a"
)
