# Empty dependencies file for kodan_util.
# This may be replaced when dependencies are built.
