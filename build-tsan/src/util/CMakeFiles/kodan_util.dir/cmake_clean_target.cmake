file(REMOVE_RECURSE
  "libkodan_util.a"
)
