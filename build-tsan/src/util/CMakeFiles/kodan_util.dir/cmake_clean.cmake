file(REMOVE_RECURSE
  "CMakeFiles/kodan_util.dir/log.cpp.o"
  "CMakeFiles/kodan_util.dir/log.cpp.o.d"
  "CMakeFiles/kodan_util.dir/noise.cpp.o"
  "CMakeFiles/kodan_util.dir/noise.cpp.o.d"
  "CMakeFiles/kodan_util.dir/rng.cpp.o"
  "CMakeFiles/kodan_util.dir/rng.cpp.o.d"
  "CMakeFiles/kodan_util.dir/stats.cpp.o"
  "CMakeFiles/kodan_util.dir/stats.cpp.o.d"
  "CMakeFiles/kodan_util.dir/table.cpp.o"
  "CMakeFiles/kodan_util.dir/table.cpp.o.d"
  "CMakeFiles/kodan_util.dir/thread_pool.cpp.o"
  "CMakeFiles/kodan_util.dir/thread_pool.cpp.o.d"
  "libkodan_util.a"
  "libkodan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
