file(REMOVE_RECURSE
  "CMakeFiles/kodan_sim.dir/coverage.cpp.o"
  "CMakeFiles/kodan_sim.dir/coverage.cpp.o.d"
  "CMakeFiles/kodan_sim.dir/mission.cpp.o"
  "CMakeFiles/kodan_sim.dir/mission.cpp.o.d"
  "libkodan_sim.a"
  "libkodan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
