# Empty dependencies file for kodan_sim.
# This may be replaced when dependencies are built.
