file(REMOVE_RECURSE
  "libkodan_sim.a"
)
