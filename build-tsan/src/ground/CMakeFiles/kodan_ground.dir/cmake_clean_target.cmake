file(REMOVE_RECURSE
  "libkodan_ground.a"
)
