file(REMOVE_RECURSE
  "CMakeFiles/kodan_ground.dir/contact.cpp.o"
  "CMakeFiles/kodan_ground.dir/contact.cpp.o.d"
  "CMakeFiles/kodan_ground.dir/downlink.cpp.o"
  "CMakeFiles/kodan_ground.dir/downlink.cpp.o.d"
  "CMakeFiles/kodan_ground.dir/station.cpp.o"
  "CMakeFiles/kodan_ground.dir/station.cpp.o.d"
  "libkodan_ground.a"
  "libkodan_ground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_ground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
