
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ground/contact.cpp" "src/ground/CMakeFiles/kodan_ground.dir/contact.cpp.o" "gcc" "src/ground/CMakeFiles/kodan_ground.dir/contact.cpp.o.d"
  "/root/repo/src/ground/downlink.cpp" "src/ground/CMakeFiles/kodan_ground.dir/downlink.cpp.o" "gcc" "src/ground/CMakeFiles/kodan_ground.dir/downlink.cpp.o.d"
  "/root/repo/src/ground/station.cpp" "src/ground/CMakeFiles/kodan_ground.dir/station.cpp.o" "gcc" "src/ground/CMakeFiles/kodan_ground.dir/station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/orbit/CMakeFiles/kodan_orbit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
