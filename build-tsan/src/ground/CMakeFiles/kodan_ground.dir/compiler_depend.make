# Empty compiler generated dependencies file for kodan_ground.
# This may be replaced when dependencies are built.
