# Empty compiler generated dependencies file for kodan_orbit.
# This may be replaced when dependencies are built.
