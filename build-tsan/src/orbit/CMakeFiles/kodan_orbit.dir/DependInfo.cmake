
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/earth.cpp" "src/orbit/CMakeFiles/kodan_orbit.dir/earth.cpp.o" "gcc" "src/orbit/CMakeFiles/kodan_orbit.dir/earth.cpp.o.d"
  "/root/repo/src/orbit/elements.cpp" "src/orbit/CMakeFiles/kodan_orbit.dir/elements.cpp.o" "gcc" "src/orbit/CMakeFiles/kodan_orbit.dir/elements.cpp.o.d"
  "/root/repo/src/orbit/propagator.cpp" "src/orbit/CMakeFiles/kodan_orbit.dir/propagator.cpp.o" "gcc" "src/orbit/CMakeFiles/kodan_orbit.dir/propagator.cpp.o.d"
  "/root/repo/src/orbit/sun.cpp" "src/orbit/CMakeFiles/kodan_orbit.dir/sun.cpp.o" "gcc" "src/orbit/CMakeFiles/kodan_orbit.dir/sun.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
