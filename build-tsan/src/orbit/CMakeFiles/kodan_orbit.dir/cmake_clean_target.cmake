file(REMOVE_RECURSE
  "libkodan_orbit.a"
)
