file(REMOVE_RECURSE
  "CMakeFiles/kodan_orbit.dir/earth.cpp.o"
  "CMakeFiles/kodan_orbit.dir/earth.cpp.o.d"
  "CMakeFiles/kodan_orbit.dir/elements.cpp.o"
  "CMakeFiles/kodan_orbit.dir/elements.cpp.o.d"
  "CMakeFiles/kodan_orbit.dir/propagator.cpp.o"
  "CMakeFiles/kodan_orbit.dir/propagator.cpp.o.d"
  "CMakeFiles/kodan_orbit.dir/sun.cpp.o"
  "CMakeFiles/kodan_orbit.dir/sun.cpp.o.d"
  "libkodan_orbit.a"
  "libkodan_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
