# Empty dependencies file for kodan_sense.
# This may be replaced when dependencies are built.
