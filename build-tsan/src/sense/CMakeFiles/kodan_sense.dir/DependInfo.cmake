
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sense/camera.cpp" "src/sense/CMakeFiles/kodan_sense.dir/camera.cpp.o" "gcc" "src/sense/CMakeFiles/kodan_sense.dir/camera.cpp.o.d"
  "/root/repo/src/sense/capture.cpp" "src/sense/CMakeFiles/kodan_sense.dir/capture.cpp.o" "gcc" "src/sense/CMakeFiles/kodan_sense.dir/capture.cpp.o.d"
  "/root/repo/src/sense/wrs.cpp" "src/sense/CMakeFiles/kodan_sense.dir/wrs.cpp.o" "gcc" "src/sense/CMakeFiles/kodan_sense.dir/wrs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/orbit/CMakeFiles/kodan_orbit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/kodan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
