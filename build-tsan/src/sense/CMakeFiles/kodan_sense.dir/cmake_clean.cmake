file(REMOVE_RECURSE
  "CMakeFiles/kodan_sense.dir/camera.cpp.o"
  "CMakeFiles/kodan_sense.dir/camera.cpp.o.d"
  "CMakeFiles/kodan_sense.dir/capture.cpp.o"
  "CMakeFiles/kodan_sense.dir/capture.cpp.o.d"
  "CMakeFiles/kodan_sense.dir/wrs.cpp.o"
  "CMakeFiles/kodan_sense.dir/wrs.cpp.o.d"
  "libkodan_sense.a"
  "libkodan_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kodan_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
