file(REMOVE_RECURSE
  "libkodan_sense.a"
)
