/**
 * @file
 * End-to-end mission study: a Landsat-8-like satellite flying the cloud
 * filter for one day, comparing bent pipe, direct deployment, and Kodan.
 *
 * Unlike the quickstart (which uses the analytic projection), this
 * example drives the *deployed runtime* frame by frame along the actual
 * orbit: frames are captured at the real cadence, the context engine
 * classifies every tile, and the selection logic decides what to
 * discard, downlink raw, or filter. The ground segment supplies the
 * contact time that saturates the downlink.
 */

#include <iostream>

#include "core/kodan.hpp"
#include "ground/contact.hpp"
#include "ground/downlink.hpp"
#include "ground/station.hpp"
#include "sense/capture.hpp"
#include "telemetry/telemetry.hpp"
#include "util/units.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::telemetry::configureFromArgs(argc, argv);
    using namespace kodan;

    std::cout << "=== One-day cloud-filter mission (App 4, Orin 15W) "
                 "===\n\n";

    // --- One-time transformation on the representative dataset.
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const core::Application app{4};
    const auto artifacts = transformer.transformApp(app, shared);

    // --- Target system: orbit, camera, ground segment.
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto camera = sense::CameraModel::landsat8Multispectral();
    const double deadline = camera.framePeriod(sat.groundTrackSpeed());

    const ground::ContactFinder finder;
    const auto stations = ground::landsatGroundSegment();
    double contact_seconds = 0.0;
    std::size_t passes = 0;
    for (const auto &station : stations) {
        const auto windows =
            finder.find(sat, station, 0.0, util::kSecondsPerDay);
        contact_seconds += ground::totalContactSeconds(windows);
        passes += windows.size();
    }
    const ground::DownlinkModel radio;
    const double budget = radio.bitsForContact(contact_seconds, passes);
    std::cout << "Ground segment: " << stations.size() << " stations, "
              << passes << " passes, "
              << util::TablePrinter::fmt(contact_seconds / 60.0, 1)
              << " min of contact -> "
              << util::TablePrinter::fmt(budget / 1e12, 2)
              << " Tbit/day downlink budget\n";
    std::cout << "Frame deadline: "
              << util::TablePrinter::fmt(deadline, 1) << " s\n\n";

    core::SystemProfile profile;
    profile.target = hw::Target::Orin15W;
    profile.frame_deadline = deadline;
    profile.frames_per_day = util::kSecondsPerDay / deadline;
    profile.frame_bits = camera.frameBits();
    profile.downlink_bits_per_day = budget;
    profile.prevalence = shared.prevalence;

    const auto selection = transformer.select(artifacts, profile);

    // --- Fly one orbit of real frames through the deployed runtime.
    const core::Runtime runtime(selection.logic, shared.engine.get(),
                                &artifacts.zoo, profile.target);
    data::DatasetParams frame_params;
    frame_params.grid = 66;
    frame_params.seed = 555;
    data::DatasetGenerator generator(world, frame_params);
    const int frames_flown = 120; // ~45 min of flight
    const auto frames =
        generator.generateAlongTrack(sat, deadline, frames_flown);

    std::vector<core::FrameReport> reports;
    reports.reserve(frames.size());
    for (const auto &frame : frames) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto agg = core::Runtime::aggregate(reports);

    std::cout << "Deployed runtime over " << frames_flown
              << " along-track frames:\n";
    std::cout << "  mean compute time/frame: "
              << util::TablePrinter::fmt(agg.compute_time, 1) << " s ("
              << (agg.compute_time <= deadline ? "meets" : "misses")
              << " the deadline)\n";
    std::cout << "  tiles: " << agg.tiles_discarded << " discarded, "
              << agg.tiles_downlinked << " downlinked raw, "
              << agg.tiles_modeled << " filtered\n";
    std::cout << "  product volume: "
              << util::TablePrinter::fmt(100.0 * agg.product_fraction, 1)
              << "% of raw bits; product precision "
              << util::TablePrinter::fmt(
                     agg.product_fraction > 0.0
                         ? agg.product_high_fraction / agg.product_fraction
                         : 0.0)
              << "\n\n";

    // --- Day-scale accounting vs baselines.
    const auto bent = core::bentPipeOutcome(profile);
    const auto direct = core::Transformer::directDeploy(artifacts, profile);
    util::TablePrinter table({"scheme", "DVD", "high-value Tbit/day",
                              "frame time (s)"});
    auto add = [&](const char *name, const core::DeploymentOutcome &o) {
        table.addRow({name, util::TablePrinter::fmt(o.dvd),
                      util::TablePrinter::fmt(o.high_bits_sent / 1e12, 2),
                      util::TablePrinter::fmt(o.frame_time, 1)});
    };
    add("bent pipe", bent);
    add("direct deploy", direct);
    add("Kodan", selection.outcome);
    table.print(std::cout);
    std::cout << "\nKodan downlinks "
              << util::TablePrinter::fmt(
                     selection.outcome.high_bits_sent /
                         bent.high_bits_sent,
                     2)
              << "x the high-value data of the bent pipe on the same "
                 "radio.\n";
    return 0;
}
