/**
 * @file
 * Constellation planning study: how many satellites does a mission
 * need?
 *
 * Sweeps constellation size for (a) observation coverage of the WRS
 * grid, (b) downlink saturation of the shared ground segment, and (c)
 * the processing pipeline length required for full ground-track
 * filtering coverage with and without Kodan — the trade the paper's
 * motivation (Figs. 2-5) and Fig. 11 explore.
 */

#include <iostream>

#include "core/kodan.hpp"
#include "sim/coverage.hpp"
#include "sim/mission.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::telemetry::configureFromArgs(argc, argv);
    using namespace kodan;

    std::cout << "=== Constellation planner ===\n\n";

    // --- (a)+(b): coverage and downlink saturation per constellation
    // size.
    const auto camera = sense::CameraModel::landsat8Multispectral();
    const sense::WrsGrid grid;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    std::cout << "Observation vs downlink (one day, bent pipe):\n";
    util::TablePrinter sweep({"satellites", "scenes seen %",
                              "frames downlinked", "downlink/sat"});
    for (int sats : {1, 4, 8, 16, 32}) {
        util::Rng rng(99);
        std::vector<orbit::OrbitalElements> constellation;
        for (int k = 0; k < sats; ++k) {
            constellation.push_back(orbit::OrbitalElements::landsat8(
                0.0, rng.uniform(0.0, util::kTwoPi)));
        }
        const auto coverage =
            sim::uniqueSceneCoverage(constellation, camera, grid);

        sim::MissionConfig config;
        config.satellites = constellation;
        config.stations = ground::landsatGroundSegment();
        config.camera = camera;
        const auto result =
            sim.run(config, sim::FilterBehavior::bentPipe()).totals();
        sweep.addRow(
            {util::TablePrinter::fmt(static_cast<long long>(sats)),
             util::TablePrinter::fmt(100.0 * coverage.coverageFraction(),
                                     1),
             util::TablePrinter::fmt(result.frames_downlinked, 0),
             util::TablePrinter::fmt(result.frames_downlinked / sats,
                                     0)});
    }
    sweep.print(std::cout);
    std::cout << "\nAdded satellites stop adding downlink once the\n"
                 "ground segment saturates - extra observations are\n"
                 "stranded in orbit unless filtered at the edge.\n\n";

    // --- Walker designs: multi-plane constellations trade coverage
    // continuity against launch complexity.
    std::cout << "Walker-delta designs (24 satellites, one day):\n";
    util::TablePrinter walker({"design", "scenes seen %"});
    for (int planes : {1, 2, 4, 8}) {
        const auto constellation = orbit::walkerConstellation(
            24, planes, planes > 1 ? 1 : 0, 705.0e3,
            orbit::sunSynchronousInclination(705.0e3));
        const auto coverage =
            sim::uniqueSceneCoverage(constellation, camera, grid);
        walker.addRow(
            {"24/" + std::to_string(planes) + "/" +
                 std::to_string(planes > 1 ? 1 : 0),
             util::TablePrinter::fmt(100.0 * coverage.coverageFraction(),
                                     1)});
    }
    walker.print(std::cout);
    std::cout << "\n";

    // --- (c): processing-coverage pipeline length, direct vs Kodan.
    std::cout << "Processing pipeline length for full ground-track "
                 "coverage (App 5, Orin 15W):\n";
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const auto artifacts =
        transformer.transformApp(core::Application{5}, shared);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto direct = core::Transformer::directDeploy(artifacts, profile);
    const auto kodan = transformer.select(artifacts, profile);

    const int direct_sats = sim::satellitesForFullCoverage(
        direct.frame_time, profile.frame_deadline);
    const int kodan_sats = sim::satellitesForFullCoverage(
        kodan.outcome.frame_time, profile.frame_deadline);
    std::cout << "  direct deploy: "
              << util::TablePrinter::fmt(direct.frame_time, 1)
              << " s/frame -> " << direct_sats << " satellites\n";
    std::cout << "  Kodan:         "
              << util::TablePrinter::fmt(kodan.outcome.frame_time, 1)
              << " s/frame -> " << kodan_sats << " satellites ("
              << util::TablePrinter::fmt(
                     static_cast<double>(direct_sats) / kodan_sats, 1)
              << "x fewer)\n";
    return 0;
}
