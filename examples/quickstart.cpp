/**
 * @file
 * Quickstart: run the full Kodan pipeline on a small synthetic dataset
 * and print what each stage produced.
 *
 * Mirrors the paper's Figure 7: a representative dataset is clustered
 * into contexts, a context engine and specialized models are trained,
 * and a selection logic is swept for a target satellite; the resulting
 * data value density is compared against the bent-pipe and direct-deploy
 * baselines.
 */

#include <iostream>

#include "core/kodan.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::telemetry::configureFromArgs(argc, argv);
    using namespace kodan;

    std::cout << "=== Kodan quickstart ===\n\n";

    // 1. A synthetic Earth, calibrated to the Sentinel-2 catalogue's 52%
    //    cloud fraction.
    data::GeoModel world;

    // 2. One-time transformation: dataset-level artifacts.
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    core::Transformer transformer(options);

    std::cout << "Preparing representative dataset ("
              << options.train_frames << " train / " << options.val_frames
              << " val frames)...\n";
    const auto shared = transformer.prepareData(world);

    std::cout << "  contexts: " << shared.partition.context_count
              << " (metric " << ml::distanceName(shared.partition.metric)
              << ", silhouette " << shared.partition.silhouette << ")\n";
    std::cout << "  engine/partition agreement: "
              << shared.engine_agreement << "\n";
    std::cout << "  validation prevalence (high-value): "
              << shared.prevalence << "\n\n";

    util::TablePrinter contexts({"context", "terrain", "share",
                                 "prevalence"});
    for (const auto &info : shared.contexts) {
        contexts.addRow({std::to_string(info.id), info.description,
                         util::TablePrinter::fmt(info.tile_share),
                         util::TablePrinter::fmt(info.prevalence)});
    }
    contexts.print(std::cout);
    std::cout << "\n";

    // 3. Per-application step for App 4 (resnet50dilated in the paper).
    const core::Application app{4};
    std::cout << "Training zoo for App " << app.tier << " (" << app.name()
              << ")...\n";
    const auto artifacts = transformer.transformApp(app, shared);
    std::cout << "  zoo size: " << artifacts.zoo.entries.size()
              << " models; direct-deploy tiling: "
              << artifacts.direct_tiles_per_frame << " tiles/frame\n\n";

    // 4. Selection logic for the cubesat-class Orin 15W target.
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto kodan_result = transformer.select(artifacts, profile);
    const auto direct = core::Transformer::directDeploy(artifacts, profile);
    const auto bent = core::bentPipeOutcome(profile);

    std::cout << "Selection logic for " << hw::targetName(profile.target)
              << " (frame deadline " << profile.frame_deadline << " s):\n";
    std::cout << "  tiling: " << kodan_result.logic.tiles_per_side << "x"
              << kodan_result.logic.tiles_per_side << " tiles/frame\n";
    for (std::size_t c = 0; c < kodan_result.logic.per_context.size();
         ++c) {
        const auto &action = kodan_result.logic.per_context[c];
        std::cout << "  context " << c << " (" << shared.contexts[c].description
                  << "): " << core::actionKindName(action.kind);
        if (action.kind == core::ActionKind::RunModel) {
            std::cout << " tier "
                      << artifacts.zoo.entries[action.model].tier
                      << (artifacts.zoo.entries[action.model].context < 0
                              ? " (reference)"
                              : " (specialized)");
        }
        std::cout << "\n";
    }
    std::cout << "\n";

    util::TablePrinter results({"scheme", "DVD", "frame time (s)",
                                "processed", "HV yield"});
    auto add = [&](const char *name, const core::DeploymentOutcome &o) {
        results.addRow({name, util::TablePrinter::fmt(o.dvd),
                        util::TablePrinter::fmt(o.frame_time, 1),
                        util::TablePrinter::fmt(o.processed_fraction, 2),
                        util::TablePrinter::fmt(o.high_value_yield, 2)});
    };
    add("bent pipe", bent);
    add("direct deploy", direct);
    add("Kodan", kodan_result.outcome);
    results.print(std::cout);

    const double improvement =
        (kodan_result.outcome.dvd - bent.dvd) / bent.dvd * 100.0;
    std::cout << "\nKodan improves DVD by " << improvement
              << "% over the bent pipe.\n";
    return 0;
}
