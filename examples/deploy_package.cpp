/**
 * @file
 * Deployment-package workflow: the one-time transformation step runs on
 * the ground, its artifacts are serialized ("uplinked"), and the
 * satellite-side runtime is reconstructed purely from the package.
 *
 * This is the operational split of the paper's Figure 7: everything to
 * the left of the dashed line happens once on the ground; the satellite
 * only ever sees the package.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/kodan.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::telemetry::configureFromArgs(argc, argv);
    using namespace kodan;

    std::cout << "=== Deployment package workflow ===\n\n";

    // --- Ground segment: transform and select.
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 50;
    options.val_frames = 20;
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const auto artifacts =
        transformer.transformApp(core::Application{3}, shared);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto package =
        transformer.makeDeployment(shared, artifacts, profile);

    // --- "Uplink": serialize to a file.
    const std::string path = "kodan_deployment_app3_orin.txt";
    {
        std::ofstream file(path);
        package.save(file);
    }
    std::ifstream file(path);
    file.seekg(0, std::ios::end);
    std::cout << "Wrote " << path << " (" << file.tellg() / 1024
              << " KiB): logic for " << package.engine.contextCount()
              << " contexts, " << package.zoo.entries.size()
              << " trained networks.\n\n";
    file.seekg(0);

    // --- Satellite side: reconstruct the runtime from the package only.
    const auto onboard = core::DeploymentPackage::load(file);
    const core::Runtime runtime(onboard.logic, &onboard.engine,
                                &onboard.zoo, onboard.target);

    data::DatasetParams frame_params;
    frame_params.grid = 66;
    frame_params.seed = 777;
    data::DatasetGenerator generator(world, frame_params);
    const auto frames = generator.generateGlobal(24);
    std::vector<core::FrameReport> reports;
    for (const auto &frame : frames) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto agg = core::Runtime::aggregate(reports);

    util::TablePrinter table({"metric", "value"});
    table.addRow({"frames processed",
                  util::TablePrinter::fmt(
                      static_cast<long long>(frames.size()))});
    table.addRow({"mean compute time (s)",
                  util::TablePrinter::fmt(agg.compute_time, 1)});
    table.addRow({"frame deadline (s)",
                  util::TablePrinter::fmt(profile.frame_deadline, 1)});
    table.addRow({"product volume (fraction of raw)",
                  util::TablePrinter::fmt(agg.product_fraction)});
    table.addRow({"product precision",
                  util::TablePrinter::fmt(
                      agg.product_fraction > 0.0
                          ? agg.product_high_fraction /
                                agg.product_fraction
                          : 0.0)});
    table.addRow({"cell accuracy",
                  util::TablePrinter::fmt(agg.cells.accuracy())});
    table.print(std::cout);

    std::remove(path.c_str());
    std::cout << "\nThe reconstructed runtime is bit-identical to the\n"
                 "ground-side one (see tests/core/test_deployment.cpp).\n";
    return 0;
}
