/**
 * @file
 * Context exploration: how the automatic context generation behaves.
 *
 * Sweeps cluster count and distance metric over the representative
 * dataset's label vectors (as the paper's transformation step does),
 * reports cluster validity, compares the automatic contexts with the
 * expert terrain partition, and shows how well the deployed context
 * engine imitates each.
 */

#include <iostream>

#include "core/kodan.hpp"
#include "data/generator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::telemetry::configureFromArgs(argc, argv);
    using namespace kodan;

    std::cout << "=== Context explorer ===\n\n";

    // Representative tiles.
    data::GeoModel world;
    data::DatasetParams params;
    params.grid = 66;
    params.seed = 31415;
    data::DatasetGenerator generator(world, params);
    const auto frames = generator.generateGlobal(60);
    const data::Tiler tiler(6);
    std::vector<data::TileData> tiles;
    for (const auto &frame : frames) {
        auto frame_tiles = tiler.tile(frame);
        tiles.insert(tiles.end(),
                     std::make_move_iterator(frame_tiles.begin()),
                     std::make_move_iterator(frame_tiles.end()));
    }
    std::cout << "Representative dataset: " << frames.size()
              << " frames, " << tiles.size() << " tiles\n\n";

    // --- Sweep cluster count x metric, as Section 3.2 describes.
    std::cout << "Clustering sweep (mean silhouette, higher = better "
                 "separated):\n";
    util::TablePrinter sweep({"k", "euclidean", "cosine", "hamming"});
    util::Rng rng(7);
    ml::Matrix labels(tiles.size(), data::kLabelDim);
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        std::copy(tiles[i].label_vector.begin(),
                  tiles[i].label_vector.end(), labels.row(i));
    }
    ml::Standardizer scaler;
    scaler.fit(labels);
    const ml::Matrix scaled = scaler.transform(labels);
    for (int k : {2, 3, 4, 5, 6, 8}) {
        std::vector<std::string> row = {std::to_string(k)};
        for (ml::Distance metric :
             {ml::Distance::Euclidean, ml::Distance::Cosine,
              ml::Distance::Hamming}) {
            const ml::KMeans kmeans(k, metric);
            const auto result = kmeans.fit(scaled, rng);
            row.push_back(util::TablePrinter::fmt(
                ml::silhouetteScore(scaled, result)));
        }
        sweep.addRow(row);
    }
    sweep.print(std::cout);
    std::cout << "\n";

    // --- The partition the transformation step would pick.
    const core::ContextPartitioner partitioner;
    const auto auto_partition = partitioner.fitAuto(tiles, rng);
    const auto auto_infos = core::summarizeContexts(
        tiles, auto_partition.assignment, auto_partition.context_count);
    std::cout << "Automatic contexts (k=" << auto_partition.context_count
              << ", metric " << ml::distanceName(auto_partition.metric)
              << ", silhouette "
              << util::TablePrinter::fmt(auto_partition.silhouette)
              << "):\n";
    util::TablePrinter auto_table({"context", "dominant terrain", "share",
                                   "high-value fraction"});
    for (const auto &info : auto_infos) {
        auto_table.addRow({std::to_string(info.id), info.description,
                           util::TablePrinter::fmt(info.tile_share),
                           util::TablePrinter::fmt(info.prevalence)});
    }
    auto_table.print(std::cout);
    std::cout << "\n";

    // --- Expert terrain partition for comparison.
    const auto expert = partitioner.fitExpert(tiles);
    const auto expert_infos = core::summarizeContexts(
        tiles, expert.assignment, expert.context_count);
    std::cout << "Expert (terrain) contexts:\n";
    util::TablePrinter expert_table({"terrain", "share",
                                     "high-value fraction"});
    for (const auto &info : expert_infos) {
        expert_table.addRow({info.description,
                             util::TablePrinter::fmt(info.tile_share),
                             util::TablePrinter::fmt(info.prevalence)});
    }
    expert_table.print(std::cout);
    std::cout << "\n";

    // --- Context engines for both (feature-space classifiers).
    const core::ContextEngine auto_engine(tiles, auto_partition, rng);
    const core::ContextEngine expert_engine(tiles, expert, rng);
    std::cout << "Context engine agreement with its partition (fresh "
                 "tiles):\n";
    const auto fresh_frames = generator.generateGlobal(16);
    std::vector<data::TileData> fresh;
    for (const auto &frame : fresh_frames) {
        auto frame_tiles = tiler.tile(frame);
        fresh.insert(fresh.end(),
                     std::make_move_iterator(frame_tiles.begin()),
                     std::make_move_iterator(frame_tiles.end()));
    }
    std::cout << "  automatic contexts: "
              << util::TablePrinter::fmt(
                     auto_engine.agreement(fresh, auto_partition))
              << "\n";
    std::cout << "  expert contexts:    "
              << util::TablePrinter::fmt(
                     expert_engine.agreement(fresh, expert))
              << "\n";
    return 0;
}
