/**
 * @file
 * Figure 14: effect of tiling on data value density per hardware target.
 * On constrained platforms (Orin 15W) aggressive tiling (9 tiles/frame)
 * maximizes DVD by meeting the deadline; on the 1070 Ti the
 * precision-maximal tiling wins.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Effect of tiling on data value density", "Figure 14");

    const int tilings[] = {121, 36, 16, 9};
    for (hw::Target target : hw::allTargets()) {
        const auto profile = bench::profileFor(target);
        std::cout << "Deployment to " << hw::targetName(target) << ":\n";
        util::TablePrinter table({"app", "121 t/f", "36 t/f", "16 t/f",
                                  "9 t/f", "best"});
        for (int tier = 1; tier <= hw::kAppCount; ++tier) {
            const auto &app = bench::appMeasurements(tier);
            std::vector<std::string> row = {"App " + std::to_string(tier)};
            int best_tiling = 0;
            double best = -1.0;
            for (int tiling : tilings) {
                for (const auto &dt : app.direct_tables) {
                    if (dt.tiles_per_side * dt.tiles_per_side != tiling) {
                        continue;
                    }
                    const auto outcome = core::evaluateLogic(
                        profile, dt, {dt.actions[0][0]}, false, true);
                    row.push_back(util::TablePrinter::fmt(outcome.dvd));
                    if (outcome.dvd > best) {
                        best = outcome.dvd;
                        best_tiling = tiling;
                    }
                }
            }
            row.push_back(std::to_string(best_tiling));
            table.addRow(row);
        }
        table.print(std::cout);
        bench::emitCsv(std::string("fig14_tiling_dvd_") +
                           hw::targetName(target),
                       table);
        std::cout << "\n";
    }
    std::cout << "Expected shape: small tile counts (9/frame) win on the\n"
                 "Orin for costly apps (deadline pressure); the\n"
                 "precision-maximal tiling wins on the 1070 Ti\n"
                 "(paper Fig. 14, up to ~50% effect for App 7 on Orin).\n";
    return 0;
}
