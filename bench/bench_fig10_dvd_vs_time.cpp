/**
 * @file
 * Figure 10: DVD improvement over the bent pipe (normalized to the
 * per-app maximum) as a function of application execution time per
 * frame. DVD rises as frame time falls until the frame deadline is met;
 * below the deadline it is capped by application precision.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

/**
 * Direct-deploy outcome with the frame execution time forced to @p t:
 * isolates the time axis of Fig. 10 while keeping the app's measured
 * keep-rate and precision.
 */
core::DeploymentOutcome
outcomeAtTime(const core::SystemProfile &profile,
              const core::ContextActionTable &table, double t)
{
    // Rebuild the single-candidate table with a synthetic parameter
    // count whose cost-model time per tile equals t / tiles_per_frame.
    core::ContextActionTable scaled = table;
    const double tiles =
        static_cast<double>(table.tiles_per_side) * table.tiles_per_side;
    // Invert the cost model by bisection on parameter count.
    const double per_tile = t / tiles;
    std::size_t lo = 1;
    std::size_t hi = 1;
    while (hw::CostModel::modelTime(hi, profile.target) < per_tile &&
           hi < (1ULL << 40)) {
        hi *= 2;
    }
    for (int iter = 0; iter < 64 && lo + 1 < hi; ++iter) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (hw::CostModel::modelTime(mid, profile.target) < per_tile) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    scaled.stats[0][0].model_params = hi;
    return core::evaluateLogic(profile, scaled, {scaled.actions[0][0]},
                               false, true);
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("DVD vs application execution time per frame",
                  "Figure 10");

    const auto orin = bench::profileFor(hw::Target::Orin15W);
    const auto bent = core::bentPipeOutcome(orin);

    // ---- The curve: App 4's quality characteristics swept over frame
    // execution time on the Orin.
    const auto &app4 = bench::appMeasurements(4);
    const auto &table4 = bench::directTable(app4);
    const double max_dvd = outcomeAtTime(orin, table4, 1.0).dvd;

    std::cout << "Curve (App 4 characteristics, Orin 15W):\n";
    util::TablePrinter curve({"frame time (s)", "DVD",
                              "improv. over bent (norm.)"});
    for (double t : {2.0, 10.0, 22.0, 40.0, 80.0, 120.0, 160.0, 200.0,
                     240.0, 280.0, 320.0}) {
        const auto outcome = outcomeAtTime(orin, table4, t);
        curve.addRow({util::TablePrinter::fmt(t, 0),
                      util::TablePrinter::fmt(outcome.dvd),
                      util::TablePrinter::fmt(
                          (outcome.dvd - bent.dvd) /
                              std::max(1e-12, max_dvd - bent.dvd))});
    }
    curve.print(std::cout);
    std::cout << "  (frame deadline: "
              << util::TablePrinter::fmt(orin.frame_deadline, 1)
              << " s — DVD saturates once frame time drops below it)\n\n";

    // ---- Measured points: the paper's App 1/4/7 deployments.
    std::cout << "Measured deployment points:\n";
    util::TablePrinter points({"point", "frame time (s)", "DVD",
                               "improv. over bent (norm.)"});
    auto add_point = [&](const std::string &name,
                         const core::DeploymentOutcome &o) {
        points.addRow({name, util::TablePrinter::fmt(o.frame_time, 1),
                       util::TablePrinter::fmt(o.dvd),
                       util::TablePrinter::fmt(
                           (o.dvd - bent.dvd) /
                               std::max(1e-12, max_dvd - bent.dvd))});
    };
    for (int tier : {1, 4, 7}) {
        const auto &app = bench::appMeasurements(tier);
        add_point("App " + std::to_string(tier) + " direct (Orin15W)",
                  bench::directDeploy(app, orin));
        add_point("App " + std::to_string(tier) + " Kodan (Orin15W)",
                  bench::kodanSelect(app, orin).outcome);
    }
    const auto &app1 = bench::appMeasurements(1);
    add_point("App 1 direct (i7-7800)",
              bench::directDeploy(app1,
                                  bench::profileFor(hw::Target::I7_7800)));
    add_point("App 1 direct (1070Ti)",
              bench::directDeploy(
                  app1, bench::profileFor(hw::Target::Gtx1070Ti)));
    points.print(std::cout);
    std::cout << "\nExpected shape: direct deployments past the deadline\n"
                 "sit low on the curve; Kodan points sit at or near the\n"
                 "per-app maximum (paper Fig. 10).\n";
    return 0;
}
