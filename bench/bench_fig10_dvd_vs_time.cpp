/**
 * @file
 * Figure 10: DVD improvement over the bent pipe (normalized to the
 * per-app maximum) as a function of application execution time per
 * frame. DVD rises as frame time falls until the frame deadline is met;
 * below the deadline it is capped by application precision.
 */

#include <iostream>
#include <string>

#include "common.hpp"
#include "sim/mission.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

/**
 * Direct-deploy outcome with the frame execution time forced to @p t:
 * isolates the time axis of Fig. 10 while keeping the app's measured
 * keep-rate and precision.
 */
core::DeploymentOutcome
outcomeAtTime(const core::SystemProfile &profile,
              const core::ContextActionTable &table, double t)
{
    // Rebuild the single-candidate table with a synthetic parameter
    // count whose cost-model time per tile equals t / tiles_per_frame.
    core::ContextActionTable scaled = table;
    const double tiles =
        static_cast<double>(table.tiles_per_side) * table.tiles_per_side;
    // Invert the cost model by bisection on parameter count.
    const double per_tile = t / tiles;
    std::size_t lo = 1;
    std::size_t hi = 1;
    while (hw::CostModel::modelTime(hi, profile.target) < per_tile &&
           hi < (1ULL << 40)) {
        hi *= 2;
    }
    for (int iter = 0; iter < 64 && lo + 1 < hi; ++iter) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (hw::CostModel::modelTime(mid, profile.target) < per_tile) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    scaled.stats[0][0].model_params = hi;
    return core::evaluateLogic(profile, scaled, {scaled.actions[0][0]},
                               false, true);
}

/**
 * Mission-time view of the same story: a day of the 3-satellite
 * constellation under the bent pipe vs a Kodan-like on-board filter.
 * With telemetry enabled, each run feeds sim-time-binned series
 * (fig10.bent.* / fig10.kodan.*) — DVD per bin over mission time is the
 * time axis of Fig. 10 made observable, and the regression pipeline
 * diffs those series bit-exactly against committed baselines.
 */
void
missionSection()
{
    std::cout << "\nMission DVD over a simulated day "
                 "(3-satellite constellation):\n";
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(3);

    // A filter with Kodan-like characteristics: fits the frame deadline,
    // keeps nearly all high-value frames, discards nearly all low-value
    // ones, and downlinks products instead of raw frames.
    sim::FilterBehavior kodan_like;
    kodan_like.frame_time = 18.0;
    kodan_like.keep_high = 0.95;
    kodan_like.keep_low = 0.05;
    kodan_like.send_unprocessed = false;

    config.telemetry_prefix = "fig10.bent";
    const auto bent = sim.run(config, sim::FilterBehavior::bentPipe());
    config.telemetry_prefix = "fig10.kodan";
    const auto kodan = sim.run(config, kodan_like);

    util::TablePrinter table(
        {"pipeline", "frames downlinked", "DVD", "high-value yield"});
    const auto add_row = [&](const std::string &name,
                             const sim::MissionResult &result) {
        const auto totals = result.totals();
        table.addRow({name,
                      util::TablePrinter::fmt(totals.frames_downlinked, 1),
                      util::TablePrinter::fmt(totals.dvd()),
                      util::TablePrinter::fmt(totals.highValueYield())});
    };
    add_row("bent pipe", bent);
    add_row("kodan-like filter", kodan);
    table.print(std::cout);
    bench::emitCsv("fig10_mission_dvd", table);
    std::cout << "  (with --telemetry-out, the sim-time series "
                 "fig10.bent.* / fig10.kodan.*\n"
                 "   land in the .timeseries.json sibling; kodan-report "
                 "diff --timeseries\n"
                 "   guards them bin by bin)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bool mission_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--mission-only") {
            mission_only = true;
        }
    }
    bench::banner("DVD vs application execution time per frame",
                  "Figure 10");
    if (mission_only) {
        // Regression-pipeline mode: only the mission sweep, which needs
        // no measured-app bundle and produces the deterministic
        // fig10.* time series.
        missionSection();
        return 0;
    }

    const auto orin = bench::profileFor(hw::Target::Orin15W);
    const auto bent = core::bentPipeOutcome(orin);

    // ---- The curve: App 4's quality characteristics swept over frame
    // execution time on the Orin.
    const auto &app4 = bench::appMeasurements(4);
    const auto &table4 = bench::directTable(app4);
    const double max_dvd = outcomeAtTime(orin, table4, 1.0).dvd;

    std::cout << "Curve (App 4 characteristics, Orin 15W):\n";
    util::TablePrinter curve({"frame time (s)", "DVD",
                              "improv. over bent (norm.)"});
    for (double t : {2.0, 10.0, 22.0, 40.0, 80.0, 120.0, 160.0, 200.0,
                     240.0, 280.0, 320.0}) {
        const auto outcome = outcomeAtTime(orin, table4, t);
        curve.addRow({util::TablePrinter::fmt(t, 0),
                      util::TablePrinter::fmt(outcome.dvd),
                      util::TablePrinter::fmt(
                          (outcome.dvd - bent.dvd) /
                              std::max(1e-12, max_dvd - bent.dvd))});
    }
    curve.print(std::cout);
    std::cout << "  (frame deadline: "
              << util::TablePrinter::fmt(orin.frame_deadline, 1)
              << " s — DVD saturates once frame time drops below it)\n\n";

    // ---- Measured points: the paper's App 1/4/7 deployments.
    std::cout << "Measured deployment points:\n";
    util::TablePrinter points({"point", "frame time (s)", "DVD",
                               "improv. over bent (norm.)"});
    auto add_point = [&](const std::string &name,
                         const core::DeploymentOutcome &o) {
        points.addRow({name, util::TablePrinter::fmt(o.frame_time, 1),
                       util::TablePrinter::fmt(o.dvd),
                       util::TablePrinter::fmt(
                           (o.dvd - bent.dvd) /
                               std::max(1e-12, max_dvd - bent.dvd))});
    };
    for (int tier : {1, 4, 7}) {
        const auto &app = bench::appMeasurements(tier);
        add_point("App " + std::to_string(tier) + " direct (Orin15W)",
                  bench::directDeploy(app, orin));
        add_point("App " + std::to_string(tier) + " Kodan (Orin15W)",
                  bench::kodanSelect(app, orin).outcome);
    }
    const auto &app1 = bench::appMeasurements(1);
    add_point("App 1 direct (i7-7800)",
              bench::directDeploy(app1,
                                  bench::profileFor(hw::Target::I7_7800)));
    add_point("App 1 direct (1070Ti)",
              bench::directDeploy(
                  app1, bench::profileFor(hw::Target::Gtx1070Ti)));
    points.print(std::cout);
    std::cout << "\nExpected shape: direct deployments past the deadline\n"
                 "sit low on the curve; Kodan points sit at or near the\n"
                 "per-app maximum (paper Fig. 10).\n";
    missionSection();
    return 0;
}
