/**
 * @file
 * Ablation: legacy (out-of-domain) reference applications.
 *
 * The paper's reference applications are datacenter networks deployed to
 * a new domain; Kodan's specialization retrains them in-domain. This
 * bench disables the legacy domain shift — training the reference on the
 * representative dataset itself — to isolate how much of the
 * context-specialization gain (Fig. 12) comes from in-domain retraining
 * versus pure per-context capacity effects.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

struct Row
{
    const char *name;
    double direct_precision;
    double ctx_precision;
    double direct_dvd;
    double kodan_dvd;
};

Row
runWith(bool legacy, const char *name)
{
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    options.legacy_reference = legacy;
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const auto artifacts =
        transformer.transformApp(core::Application{4}, shared);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);

    const auto direct =
        core::Transformer::directDeploy(artifacts, profile);
    const auto kodan = transformer.select(artifacts, profile);

    // Context-specialized precision (Fig. 12-style): per context, the
    // best model candidate's density, share-weighted, at the direct
    // tiling.
    const auto &direct_table = artifacts.directTable();
    double bits = 0.0;
    double high = 0.0;
    for (const auto &table : artifacts.tables) {
        if (table.tiles_per_side != direct_table.tiles_per_side) {
            continue;
        }
        for (int c = 0; c < table.contextCount(); ++c) {
            const double share = table.contexts[c].tile_share;
            double best_density = -1.0;
            const core::ActionStats *best = nullptr;
            for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
                if (table.actions[c][a].kind !=
                        core::ActionKind::RunModel ||
                    table.stats[c][a].bits_fraction <= 0.0) {
                    continue;
                }
                if (table.stats[c][a].density() > best_density) {
                    best_density = table.stats[c][a].density();
                    best = &table.stats[c][a];
                }
            }
            if (best != nullptr) {
                bits += share * best->bits_fraction;
                high += share * best->high_fraction;
            }
        }
    }
    return {name, direct_table.stats[0][0].density(),
            bits > 0.0 ? high / bits : 0.0, direct.dvd, kodan.outcome.dvd};
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("Ablation: legacy reference domain (App 4, Orin 15W)",
                  "the Fig. 12 mechanism");

    const Row legacy = runWith(true, "legacy reference (paper setting)");
    const Row in_domain = runWith(false, "in-domain reference");

    util::TablePrinter table({"reference", "direct precision",
                              "ctx-specialized precision", "direct DVD",
                              "Kodan DVD"});
    for (const Row &row : {legacy, in_domain}) {
        table.addRow({row.name,
                      util::TablePrinter::fmt(row.direct_precision),
                      util::TablePrinter::fmt(row.ctx_precision),
                      util::TablePrinter::fmt(row.direct_dvd),
                      util::TablePrinter::fmt(row.kodan_dvd)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: with a legacy reference the\n"
                 "context-specialized precision clearly exceeds the\n"
                 "direct precision (in-domain retraining); with an\n"
                 "in-domain reference the gap nearly vanishes while\n"
                 "Kodan's end-to-end DVD stays high (elision and tiling\n"
                 "do not depend on the domain shift).\n";
    return 0;
}
