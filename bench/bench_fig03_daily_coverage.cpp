/**
 * @file
 * Figure 3: unique global WRS frames observed per day vs constellation
 * size. The curve saturates at the full 233 x 248 = 57,784-scene grid;
 * daily global coverage requires ~40 satellites.
 */

#include <iostream>

#include "common.hpp"
#include "sim/coverage.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Daily global coverage vs constellation size",
                  "Figure 3");

    const auto camera = sense::CameraModel::landsat8Multispectral();
    const sense::WrsGrid grid;

    util::TablePrinter table({"satellites", "unique frames/day",
                              "coverage %"});
    int full_coverage_sats = -1;
    for (int sats : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56}) {
        // Randomly phased within the plane: launch and station-keeping do
        // not phase-lock a constellation for coverage, so path overlap
        // between satellites is what drives the slow saturation of the
        // paper's curve.
        util::Rng rng(2023);
        std::vector<orbit::OrbitalElements> constellation;
        for (int k = 0; k < sats; ++k) {
            constellation.push_back(orbit::OrbitalElements::landsat8(
                0.0, rng.uniform(0.0, util::kTwoPi)));
        }
        const auto result =
            sim::uniqueSceneCoverage(constellation, camera, grid);
        table.addRow(
            {util::TablePrinter::fmt(static_cast<long long>(sats)),
             util::TablePrinter::fmt(
                 static_cast<long long>(result.unique_scenes)),
             util::TablePrinter::fmt(100.0 * result.coverageFraction(),
                                     1)});
        if (full_coverage_sats < 0 && result.coverageFraction() > 0.90) {
            full_coverage_sats = sats;
        }
    }
    table.print(std::cout);
    std::cout << "\nGrid size: " << grid.sceneCount()
              << " scenes (233 paths x 248 rows).\n";
    if (full_coverage_sats > 0) {
        std::cout << "Near-daily global coverage (>90% of scenes) "
                     "reached at "
                  << full_coverage_sats
                  << " satellites (paper: curve approaches the plateau "
                     "at ~40).\n";
    } else {
        std::cout << "Near-daily global coverage not reached within 56 "
                     "satellites.\n";
    }
    return 0;
}
