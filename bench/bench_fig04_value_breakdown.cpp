/**
 * @file
 * Figure 4: per-satellite per-day frame accounting — observed on orbit,
 * downlinked by a bent pipe, and downlinked by an ideal (free, perfect)
 * edge filter — split into high-value and low-value frames. Ideal edge
 * filtering delivers ~3x more high-value data than the bent pipe.
 */

#include <iostream>

#include "common.hpp"
#include "sim/mission.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("High/low-value frame breakdown per satellite-day",
                  "Figure 4");

    // The motivation figures use the MODIS-like 2/3 cloud prevalence:
    // one third of observations are high-value.
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(1);

    const auto bent = sim.run(config, sim::FilterBehavior::bentPipe());
    const auto ideal = sim.run(config, sim::FilterBehavior::idealFilter());
    const auto bent_totals = bent.totals();
    const auto ideal_totals = ideal.totals();
    const double frame_bits = config.camera.frameBits();

    const double observed =
        static_cast<double>(bent_totals.frames_observed);
    const double observed_high =
        bent_totals.high_bits_observed / frame_bits;

    util::TablePrinter table(
        {"column", "frames", "high-value", "low-value"});
    auto add = [&](const char *name, double total, double high) {
        table.addRow({name, util::TablePrinter::fmt(total, 0),
                      util::TablePrinter::fmt(high, 0),
                      util::TablePrinter::fmt(total - high, 0)});
    };
    add("observed on orbit", observed, observed_high);
    add("downlinked, bent pipe", bent_totals.frames_downlinked,
        bent_totals.high_bits_downlinked / frame_bits);
    add("downlinked, ideal OEC", ideal_totals.frames_downlinked,
        ideal_totals.high_bits_downlinked / frame_bits);
    table.print(std::cout);

    const double bent_yield =
        bent_totals.high_bits_downlinked / bent_totals.high_bits_observed;
    const double ideal_yield = ideal_totals.high_bits_downlinked /
                               ideal_totals.high_bits_observed;
    std::cout << "\nObserved high-value data downlinked: bent pipe "
              << util::TablePrinter::fmt(100.0 * bent_yield, 1)
              << "% (paper: <21%), ideal OEC "
              << util::TablePrinter::fmt(100.0 * ideal_yield, 1)
              << "% (paper: ~63%).\n";
    std::cout << "Ideal edge filtering improvement: "
              << util::TablePrinter::fmt(ideal_yield / bent_yield, 2)
              << "x (paper: ~3x).\n";
    return 0;
}
