/**
 * @file
 * Figure 12: geospatial contexts improve accuracy (left) and precision
 * (right). Per application, the direct (single global model) accuracy/
 * precision is compared against context-specialized model selection
 * (per-context best candidate), both at the app's direct-deploy tiling.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

/** Accuracy and product precision of a per-context model assignment. */
struct QualityPoint
{
    double accuracy = 0.0;
    double precision = 0.0;
};

/** Pick, per context, the model candidate maximizing product density. */
QualityPoint
contextSpecialized(const core::ContextActionTable &table)
{
    double accuracy = 0.0;
    double bits = 0.0;
    double high = 0.0;
    double share_total = 0.0;
    for (int c = 0; c < table.contextCount(); ++c) {
        const double share = table.contexts[c].tile_share;
        if (share <= 0.0) {
            continue;
        }
        double best_density = -1.0;
        const core::ActionStats *best = nullptr;
        for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
            if (table.actions[c][a].kind != core::ActionKind::RunModel) {
                continue;
            }
            const auto &stats = table.stats[c][a];
            if (stats.density() > best_density &&
                stats.bits_fraction > 0.0) {
                best_density = stats.density();
                best = &stats;
            }
        }
        if (best == nullptr) {
            continue;
        }
        accuracy += share * best->cell_accuracy;
        bits += share * best->bits_fraction;
        high += share * best->high_fraction;
        share_total += share;
    }
    QualityPoint point;
    point.accuracy = share_total > 0.0 ? accuracy / share_total : 0.0;
    point.precision = bits > 0.0 ? high / bits : 1.0;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("Contexts improve accuracy and precision", "Figure 12");

    util::TablePrinter table({"app", "direct acc", "ctx acc",
                              "direct prec", "ctx prec",
                              "prec improv %"});
    double best_precision_gain = 0.0;
    double best_accuracy_gain = 0.0;
    for (int tier = 1; tier <= hw::kAppCount; ++tier) {
        const auto &app = bench::appMeasurements(tier);
        const auto &direct = bench::directTable(app);
        const auto &direct_stats = direct.stats[0][0];
        const double direct_precision = direct_stats.density();
        const double direct_accuracy = direct_stats.cell_accuracy;

        // The context table at the same tiling.
        const core::ContextActionTable *ctx_table = nullptr;
        for (const auto &candidate : app.tables) {
            if (candidate.tiles_per_side == direct.tiles_per_side) {
                ctx_table = &candidate;
            }
        }
        const QualityPoint ctx = contextSpecialized(*ctx_table);
        const double precision_gain =
            100.0 * (ctx.precision - direct_precision) / direct_precision;
        best_precision_gain =
            std::max(best_precision_gain, precision_gain);
        best_accuracy_gain =
            std::max(best_accuracy_gain,
                     100.0 * (ctx.accuracy - direct_accuracy) /
                         direct_accuracy);
        table.addRow({"App " + std::to_string(tier),
                      util::TablePrinter::fmt(direct_accuracy),
                      util::TablePrinter::fmt(ctx.accuracy),
                      util::TablePrinter::fmt(direct_precision),
                      util::TablePrinter::fmt(ctx.precision),
                      util::TablePrinter::fmt(precision_gain, 1)});
    }
    table.print(std::cout);
    std::cout << "\nBest precision improvement from contexts: "
              << util::TablePrinter::fmt(best_precision_gain, 1)
              << "% (paper: up to 33%, App 2). Best accuracy "
                 "improvement: "
              << util::TablePrinter::fmt(best_accuracy_gain, 1)
              << "% (paper: up to 7.5%).\n";
    return 0;
}
