/**
 * @file
 * Figure 5: percentage of observed high-value data downlinked by a bent
 * pipe versus a directly-deployed cloud filter, across constellation
 * sizes. The filter needs 98 s per frame against a ~22 s frame deadline,
 * so direct deployment only improves the yield by a few percent instead
 * of the potential 3x.
 */

#include <iostream>

#include "common.hpp"
#include "sim/mission.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner(
        "Observed high-value data downlinked: bent pipe vs direct deploy",
        "Figure 5");

    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    // The paper's real cloud filter: 98 s per frame (1m38s), deployed
    // unchanged. As a frame-level gate it only drops frames that are
    // decisively cloudy (most low-value frames are partially cloudy and
    // survive), and — being a legacy datacenter app — it does not
    // reorder the radio queue.
    sim::FilterBehavior direct;
    direct.frame_time = 98.0;
    direct.keep_high = 0.98;
    direct.keep_low = 0.45;
    direct.send_unprocessed = true;
    direct.prioritize_products = false;

    util::TablePrinter table({"satellites", "bent pipe %",
                              "direct deploy %", "improvement %"});
    double one_sat_bent = 0.0;
    double one_sat_direct = 0.0;
    for (int sats : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56}) {
        sim::MissionConfig config =
            sim::MissionConfig::landsatConstellation(sats);
        const auto bent =
            sim.run(config, sim::FilterBehavior::bentPipe()).totals();
        const auto filtered = sim.run(config, direct).totals();
        const double bent_yield =
            100.0 * bent.high_bits_downlinked / bent.high_bits_observed;
        const double direct_yield = 100.0 *
                                    filtered.high_bits_downlinked /
                                    filtered.high_bits_observed;
        if (sats == 1) {
            one_sat_bent = bent_yield;
            one_sat_direct = direct_yield;
        }
        table.addRow(
            {util::TablePrinter::fmt(static_cast<long long>(sats)),
             util::TablePrinter::fmt(bent_yield, 1),
             util::TablePrinter::fmt(direct_yield, 1),
             util::TablePrinter::fmt(
                 100.0 * (direct_yield - bent_yield) / bent_yield, 1)});
    }
    table.print(std::cout);
    std::cout << "\nFrame deadline ~22 s, filter time 98 s: only ~22% of\n"
                 "frames can be filtered, so direct deployment improves\n"
                 "the single-satellite yield from "
              << util::TablePrinter::fmt(one_sat_bent, 1) << "% to "
              << util::TablePrinter::fmt(one_sat_direct, 1)
              << "% (paper: ~9% relative improvement, not 3x).\n";
    return 0;
}
