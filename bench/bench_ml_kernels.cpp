/**
 * @file
 * ML kernel layer: Blocked vs Naive wall-clock, at KODAN_THREADS=1 so
 * the numbers isolate the per-core algorithmic win (cache blocking,
 * unrolling, allocation-free scratch) from outer parallelism. Seven
 * workloads:
 *
 *   gemm            raw kernel GFLOP/s on an MLP-shaped product
 *   mlp_forward     batched surrogate inference (tier-7 network)
 *   gemm_i8         int8 GEMM chain over the tier-7 layer shapes
 *   mlp_forward_i8  QuantizedMlp batched inference (tier-7 network)
 *   transform_sweep end-to-end transformApp + select
 *   runtime_batch   Runtime::processFrames over a replicated frame set
 *   runtime_batch_i8 the same batch under KODAN_QUANT=int8 dispatch
 *
 * For the fp64 workloads the two columns are Naive vs Blocked backends.
 * For the *_i8 workloads the "naive" column instead holds the BLOCKED
 * FP64 reference — the speedup an operator buys by flipping the
 * precision knob, which is the number the ISSUE floors gate — while
 * the int8 path's own Naive-backend oracle runs untimed purely as the
 * bit-identity check.
 *
 * Every workload's Blocked result is cross-checked bit-exactly against
 * the Naive oracle while it is being timed; a divergence exits 1 — a
 * speedup that changed the numbers would be a bug, not a win.
 *
 * Results go to stdout and to BENCH_ml_kernels.run.json (in
 * KODAN_BENCH_CSV_DIR when set, else the bench cache directory). The
 * committed BENCH_ml_kernels.json at the repo root is the cross-PR
 * trajectory maintained by `kodan-report aggregate` (see
 * scripts/check_regressions.sh).
 *
 * --assert-speedup enforces the acceptance floors (>= 3x mlp_forward,
 * >= 1.5x transform_sweep, >= 2.5x gemm_i8 over blocked fp64); left off
 * in the timer-tolerant regression smoke where wall-clock is too noisy
 * to gate on.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/tiler.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace kodan;

double
timeSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Paired timing round for the floored *_i8 ratios. */
struct PairedTime
{
    double ref_seconds = 0.0;
    double test_seconds = 0.0;
    double speedup = 0.0;
};

/**
 * Time @p ref and @p test back to back for @p rounds rounds (after one
 * untimed warmup of each) and keep the round with the MEDIAN ref/test
 * ratio. Adjacent measurement keeps both sides under the same machine
 * state (frequency, steal time), and the median round makes the
 * asserted floors a stable statistic on a shared CI box where either
 * side alone can wobble 20-40% between processes.
 */
PairedTime
pairedMedian(int rounds, const std::function<void()> &ref,
             const std::function<void()> &test)
{
    ref();
    test();
    std::vector<PairedTime> samples(rounds);
    for (auto &s : samples) {
        s.ref_seconds = timeSeconds(ref);
        s.test_seconds = timeSeconds(test);
        s.speedup = s.test_seconds > 0.0
                        ? s.ref_seconds / s.test_seconds
                        : 0.0;
    }
    std::sort(samples.begin(), samples.end(),
              [](const PairedTime &a, const PairedTime &b) {
                  return a.speedup < b.speedup;
              });
    return samples[samples.size() / 2];
}

struct Measurement
{
    std::string workload;
    double naive_seconds = 0.0;
    double blocked_seconds = 0.0;
    double speedup = 0.0;
    double gflops = 0.0; // Blocked-path throughput where meaningful
};

ml::Matrix
randomMatrix(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    ml::Matrix m(rows, cols);
    for (double &v : m.data()) {
        v = rng.uniform(-1.0, 1.0);
    }
    return m;
}

bool
sameBits(const ml::Matrix &a, const ml::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(double)) == 0;
}

core::TransformOptions
sweepOptions()
{
    core::TransformOptions options;
    options.train_frames = 40;
    options.val_frames = 24;
    options.specialize.max_train_blocks = 16000;
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bool assert_speedup = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--assert-speedup") {
            assert_speedup = true;
        }
    }
    bench::banner("ML kernel layer: Blocked vs Naive",
                  "the kernel layer of DESIGN.md; no paper figure");

    // Per-core comparison: the kernels themselves are serial; outer
    // parallelism belongs to bench_parallel_speedup.
    util::setGlobalThreads(1);
    std::vector<Measurement> measurements;

    // ---- Workload 1: raw GEMM, MLP-shaped (batch x fan_in x fan_out).
    {
        const std::size_t m = 4096, k = 64, n = 64;
        const int reps = 40;
        util::Rng rng(7);
        const ml::Matrix a = randomMatrix(m, k, rng);
        const ml::Matrix b = randomMatrix(k, n, rng);
        Measurement mm;
        mm.workload = "gemm_4096x64x64";
        ml::Matrix naive, blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        mm.naive_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                naive = ml::Matrix::multiply(a, b);
            }
        });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        mm.blocked_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                blocked = ml::Matrix::multiply(a, b);
            }
        });
        if (!sameBits(naive, blocked)) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: gemm "
                         "backends disagree\n";
            return 1;
        }
        const double flops = 2.0 * static_cast<double>(m * k * n) * reps;
        mm.gflops = mm.blocked_seconds > 0.0
                        ? flops / mm.blocked_seconds / 1e9
                        : 0.0;
        measurements.push_back(mm);
    }

    // ---- Workload 2: batched tier-7 surrogate inference (the heaviest
    // deployed architecture — the computational bottleneck the paper
    // targets).
    {
        const std::size_t rows = std::size_t{256} * data::kBlocksPerTile;
        const int reps = 30;
        util::Rng rng(11);
        ml::Mlp net(core::Application{7}.surrogateConfig(), rng);
        const ml::Matrix x =
            randomMatrix(rows, data::kBlockInputDim, rng);
        Measurement mm;
        mm.workload = "mlp_forward_tier7";
        ml::Matrix naive, blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        mm.naive_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                net.forwardBatch(x, naive);
            }
        });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        mm.blocked_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                net.forwardBatch(x, blocked);
            }
        });
        if (!sameBits(naive, blocked)) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: "
                         "mlp_forward backends disagree\n";
            return 1;
        }
        const double flops =
            2.0 * static_cast<double>(net.parameterCount()) *
            static_cast<double>(rows) * reps;
        mm.gflops = mm.blocked_seconds > 0.0
                        ? flops / mm.blocked_seconds / 1e9
                        : 0.0;
        measurements.push_back(mm);

        // Int8 sibling on the identical batch: calibrated from the same
        // input it will run on (the offline-calibration story in
        // miniature). The reference is a freshly best-of-timed BLOCKED
        // fp64 pass, so both sides of the floored ratio get the same
        // noise treatment.
        const ml::QuantizedMlp qnet = ml::QuantizedMlp::fromCalibration(
            net, x.data().data(), x.rows());
        Measurement qm;
        qm.workload = "mlp_forward_i8_tier7";
        const int chunk_reps = 6;
        ml::Matrix q_oracle, q_blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        qnet.forwardBatch(x, q_oracle);
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        const PairedTime qt = pairedMedian(
            7,
            [&] {
                for (int r = 0; r < chunk_reps; ++r) {
                    net.forwardBatch(x, blocked);
                }
            },
            [&] {
                for (int r = 0; r < chunk_reps; ++r) {
                    qnet.forwardBatch(x, q_blocked);
                }
            });
        qm.naive_seconds = qt.ref_seconds;
        qm.blocked_seconds = qt.test_seconds;
        if (!sameBits(q_oracle, q_blocked)) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: "
                         "quantized mlp_forward backends disagree\n";
            return 1;
        }
        const double qflops =
            2.0 * static_cast<double>(net.parameterCount()) *
            static_cast<double>(rows) * chunk_reps;
        qm.gflops = qm.blocked_seconds > 0.0
                        ? qflops / qm.blocked_seconds / 1e9
                        : 0.0;
        measurements.push_back(qm);
    }

    // ---- Workload: raw int8 GEMM chain over the tier-7 hidden-layer
    // shapes ((18->64), (64->32), (32->16), each a fused
    // requantize-store GEMM) — the kernel sequence
    // QuantizedMlp::forwardBatch issues for the hidden stack, floored
    // at >= 2.5x over the blocked double GEMM on the same shapes. The
    // (16->1) head is a GEMV, not a GEMM (its padded channel tile would
    // time 16x dead lanes); it is covered by mlp_forward_i8_tier7.
    {
        const std::size_t m = std::size_t{256} * data::kBlocksPerTile;
        const int reps = 8;
        util::Rng rng(13);
        const ml::MlpConfig config =
            core::Application{7}.surrogateConfig();
        std::vector<std::size_t> dims;
        dims.push_back(static_cast<std::size_t>(config.input_dim));
        for (const int h : config.hidden) {
            dims.push_back(static_cast<std::size_t>(h));
        }
        const std::size_t layer_count = dims.size() - 1;

        // Synthetic int8 operands with per-channel requant scales in a
        // realistic range; the head layer keeps int32 accumulators.
        std::vector<std::vector<std::int8_t>> weights(layer_count);
        std::vector<std::vector<std::int32_t>> biases(layer_count);
        std::vector<std::vector<ml::kernels::Requant>> rqs(layer_count);
        std::vector<ml::kernels::PackedI8> packed(layer_count);
        for (std::size_t l = 0; l < layer_count; ++l) {
            const std::size_t k = dims[l], n = dims[l + 1];
            weights[l].resize(n * k);
            for (auto &w : weights[l]) {
                w = static_cast<std::int8_t>(
                    std::lround(rng.uniform(-127.0, 127.0)));
            }
            biases[l].resize(n);
            for (auto &b : biases[l]) {
                b = static_cast<std::int32_t>(
                    std::lround(rng.uniform(-1000.0, 1000.0)));
            }
            rqs[l].resize(n);
            for (auto &rq : rqs[l]) {
                rq = ml::kernels::requantScale(
                    rng.uniform(1.0 / 256.0, 1.0 / 16.0));
            }
            packed[l] = ml::kernels::PackedI8(n, k, weights[l].data(),
                                              biases[l].data());
        }
        std::vector<std::int8_t> a0(m * dims[0]);
        for (auto &v : a0) {
            v = static_cast<std::int8_t>(
                std::lround(rng.uniform(-127.0, 127.0)));
        }
        std::vector<std::vector<std::int8_t>> act(layer_count);
        for (std::size_t l = 0; l < layer_count; ++l) {
            act[l].resize(m * dims[l + 1]);
        }
        // Issue the layers in 512-row strips exactly as
        // QuantizedMlp::forwardBatch does: the strip's activations stay
        // cache-resident across layers instead of spilling a full
        // m-row matrix between every pair.
        constexpr std::size_t kStrip = 512;
        const auto runChain = [&](bool use_packed,
                                  std::vector<std::vector<std::int8_t>>
                                      &hidden) {
            for (std::size_t r0 = 0; r0 < m; r0 += kStrip) {
                const std::size_t rows =
                    r0 + kStrip <= m ? kStrip : m - r0;
                const std::int8_t *in = a0.data() + r0 * dims[0];
                for (std::size_t l = 0; l < layer_count; ++l) {
                    std::int8_t *dst =
                        hidden[l].data() + r0 * dims[l + 1];
                    if (use_packed) {
                        ml::kernels::gemmI8Requant(rows, packed[l], in,
                                                   rqs[l].data(), true,
                                                   dst);
                    } else {
                        ml::kernels::gemmI8Requant(
                            rows, dims[l], dims[l + 1], in,
                            weights[l].data(), biases[l].data(),
                            rqs[l].data(), true, dst);
                    }
                    in = dst;
                }
            }
        };

        // Blocked fp64 reference: the same shape chain through
        // Matrix::multiply (what the fp64 surrogate pays per layer).
        // Both sides best-of-timed — this ratio carries the ISSUE's
        // asserted 2.5x floor.
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        const ml::Matrix f0 = randomMatrix(m, dims[0], rng);
        std::vector<ml::Matrix> fw;
        for (std::size_t l = 0; l < layer_count; ++l) {
            fw.push_back(randomMatrix(dims[l], dims[l + 1], rng));
        }
        Measurement mm;
        mm.workload = "gemm_i8";
        const PairedTime gt = pairedMedian(
            7,
            [&] {
                for (int r = 0; r < reps; ++r) {
                    ml::Matrix cur = ml::Matrix::multiply(f0, fw[0]);
                    for (std::size_t l = 1; l < layer_count; ++l) {
                        cur = ml::Matrix::multiply(cur, fw[l]);
                    }
                }
            },
            [&] {
                for (int r = 0; r < reps; ++r) {
                    runChain(true, act);
                }
            });
        mm.naive_seconds = gt.ref_seconds;
        mm.blocked_seconds = gt.test_seconds;

        // Untimed naive oracle for the bit-identity check.
        std::vector<std::vector<std::int8_t>> act_oracle(layer_count);
        for (std::size_t l = 0; l < layer_count; ++l) {
            act_oracle[l].resize(m * dims[l + 1]);
        }
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        runChain(false, act_oracle);
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        bool identical = true;
        for (std::size_t l = 0; l < layer_count; ++l) {
            identical = identical &&
                        std::memcmp(act[l].data(), act_oracle[l].data(),
                                    act[l].size()) == 0;
        }
        if (!identical) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: gemm_i8 "
                         "packed path diverges from the naive oracle\n";
            return 1;
        }
        double ops = 0.0;
        for (std::size_t l = 0; l < layer_count; ++l) {
            ops += 2.0 * static_cast<double>(m * dims[l] * dims[l + 1]);
        }
        ops *= reps;
        mm.gflops = mm.blocked_seconds > 0.0
                        ? ops / mm.blocked_seconds / 1e9
                        : 0.0;
        measurements.push_back(mm);
    }

    // ---- Workloads 3 + 4: the end-to-end paths the kernels serve.
    {
        const data::GeoModel world;
        const core::Transformer transformer(sweepOptions());
        // Shared data preparation runs once on the default backend; the
        // timed region is the per-application transform + selection.
        const auto shared = transformer.prepareData(world);
        const auto profile = core::SystemProfile::landsat8(
            hw::Target::Orin15W, shared.prevalence);

        Measurement sweep;
        sweep.workload = "transform_sweep";
        double dvd_naive = 0.0, dvd_blocked = 0.0;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        sweep.naive_seconds = timeSeconds([&] {
            const auto artifacts =
                transformer.transformApp(core::Application{4}, shared);
            dvd_naive = transformer.select(artifacts, profile).outcome.dvd;
        });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        sweep.blocked_seconds = timeSeconds([&] {
            const auto artifacts =
                transformer.transformApp(core::Application{4}, shared);
            dvd_blocked =
                transformer.select(artifacts, profile).outcome.dvd;
        });
        if (dvd_naive != dvd_blocked) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: sweep dvd "
                      << dvd_blocked << " != " << dvd_naive << "\n";
            return 1;
        }
        measurements.push_back(sweep);

        // Deployed runtime over a replicated validation frame set.
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        const auto artifacts =
            transformer.transformApp(core::Application{4}, shared);
        const auto selected = transformer.select(artifacts, profile);
        const core::Runtime runtime(selected.logic, shared.engine.get(),
                                    &artifacts.zoo, hw::Target::Orin15W);
        std::vector<data::FrameSample> frames;
        for (int rep = 0; rep < 8; ++rep) {
            frames.insert(frames.end(), shared.val.begin(),
                          shared.val.end());
        }
        Measurement batch;
        batch.workload = "runtime_batch";
        core::FrameReport report_naive, report_blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        batch.naive_seconds = timeSeconds(
            [&] { report_naive = runtime.processFrames(frames); });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        batch.blocked_seconds = timeSeconds(
            [&] { report_blocked = runtime.processFrames(frames); });
        if (report_naive.compute_time != report_blocked.compute_time ||
            report_naive.product_fraction !=
                report_blocked.product_fraction) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: runtime "
                         "batch backends disagree\n";
            return 1;
        }
        measurements.push_back(batch);

        // The same deployed batch under KODAN_QUANT=int8 dispatch: zoo
        // entries whose calibrated sibling survived the tolerance gate
        // run through the integer path. Reference time is the BLOCKED
        // fp64 run above; the i8 run's own oracle is Naive-vs-Blocked
        // agreement (its compute_time legitimately differs from fp64 —
        // elision charges CostModel::modelTimeQuant).
        {
            const ml::PrecisionGuard guard(ml::Precision::Int8);
            Measurement qbatch;
            qbatch.workload = "runtime_batch_i8";
            qbatch.naive_seconds = batch.blocked_seconds;
            core::FrameReport q_naive, q_blocked;
            ml::kernels::setBackend(ml::kernels::Backend::Naive);
            q_naive = runtime.processFrames(frames);
            ml::kernels::setBackend(ml::kernels::Backend::Blocked);
            qbatch.blocked_seconds = timeSeconds(
                [&] { q_blocked = runtime.processFrames(frames); });
            if (q_naive.compute_time != q_blocked.compute_time ||
                q_naive.product_fraction != q_blocked.product_fraction) {
                std::cerr << "[kodan-bench] DETERMINISM VIOLATION: "
                             "quantized runtime batch backends "
                             "disagree\n";
                return 1;
            }
            measurements.push_back(qbatch);
        }
    }
    util::setGlobalThreads(0);

    for (auto &m : measurements) {
        m.speedup = m.blocked_seconds > 0.0
                        ? m.naive_seconds / m.blocked_seconds
                        : 0.0;
    }

    // Feed the measurements into the telemetry snapshot so the
    // kodan-report pipeline (check_regressions.sh baseline diff +
    // BENCH_ml_kernels.json trajectory) sees them: wall-clock as timers
    // (diffed with the machine-noise tolerance), derived ratios under
    // bench.ml_kernels.ratio.* (excluded from the diff, recorded in the
    // trajectory).
#ifndef KODAN_TELEMETRY_DISABLED
    if (telemetry::enabled()) {
        auto &reg = telemetry::registry();
        for (const auto &m : measurements) {
            reg.timer("bench.ml_kernels.time." + m.workload + ".naive")
                .record(m.naive_seconds);
            reg.timer("bench.ml_kernels.time." + m.workload + ".blocked")
                .record(m.blocked_seconds);
            reg.gauge("bench.ml_kernels.ratio." + m.workload + ".speedup")
                .set(m.speedup);
            if (m.gflops > 0.0) {
                reg.gauge("bench.ml_kernels.ratio." + m.workload +
                          ".gflops")
                    .set(m.gflops);
            }
        }
    }
#endif

    util::TablePrinter table({"workload", "naive (s)", "blocked (s)",
                              "speedup", "GFLOP/s"});
    for (const auto &m : measurements) {
        table.addRow({m.workload,
                      util::TablePrinter::fmt(m.naive_seconds, 3),
                      util::TablePrinter::fmt(m.blocked_seconds, 3),
                      util::TablePrinter::fmt(m.speedup, 2),
                      m.gflops > 0.0 ? util::TablePrinter::fmt(m.gflops, 2)
                                     : std::string("-")});
    }
    table.print(std::cout);
    std::cout << "\nAll workloads at KODAN_THREADS=1; every Blocked "
                 "result verified bit-identical to the Naive oracle.\n"
                 "For *_i8 rows the naive column holds the BLOCKED fp64 "
                 "reference,\nso speedup is int8-over-fp64 at the same "
                 "blocking.\n";
    bench::emitCsv("bench_ml_kernels", table);

    // JSON record for the perf trajectory.
    const std::string path = bench::runRecordPath("ml_kernels");
    std::ofstream json(path);
    if (json) {
        json << "{\n  \"measurements\": [\n";
        for (std::size_t i = 0; i < measurements.size(); ++i) {
            const auto &m = measurements[i];
            json << "    {\"workload\": \"" << m.workload
                 << "\", \"naive_seconds\": " << m.naive_seconds
                 << ", \"blocked_seconds\": " << m.blocked_seconds
                 << ", \"speedup\": " << m.speedup
                 << ", \"gflops\": " << m.gflops << "}"
                 << (i + 1 < measurements.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
        std::cerr << "[kodan-bench] wrote " << path << "\n";
    }

    if (assert_speedup) {
        int status = 0;
        for (const auto &m : measurements) {
            double floor = 0.0;
            if (m.workload == "mlp_forward_tier7") {
                floor = 3.0;
            } else if (m.workload == "transform_sweep") {
                floor = 1.5;
            } else if (m.workload == "gemm_i8") {
                // The ISSUE acceptance floor: int8 GEMM >= 2.5x the
                // blocked double GEMM on the tier-7 MLP workload.
                floor = 2.5;
            } else if (m.workload == "mlp_forward_i8_tier7") {
                // End-to-end QuantizedMlp (input quantization + double
                // head included) over blocked fp64; conservative floor
                // for the SSE2 baseline build (see EXPERIMENTS.md).
                floor = 1.5;
            }
            if (floor > 0.0 && m.speedup < floor) {
                std::cerr << "[kodan-bench] SPEEDUP FLOOR MISSED: "
                          << m.workload << " " << m.speedup << "x < "
                          << floor << "x\n";
                status = 1;
            }
        }
        if (status != 0) {
            return status;
        }
        std::cout << "Speedup floors met (mlp_forward >= 3x, "
                     "transform_sweep >= 1.5x, gemm_i8 >= 2.5x, "
                     "mlp_forward_i8 >= 1.5x).\n";
    }
    return 0;
}
