/**
 * @file
 * ML kernel layer: Blocked vs Naive wall-clock, at KODAN_THREADS=1 so
 * the numbers isolate the per-core algorithmic win (cache blocking,
 * unrolling, allocation-free scratch) from outer parallelism. Four
 * workloads:
 *
 *   gemm            raw kernel GFLOP/s on an MLP-shaped product
 *   mlp_forward     batched surrogate inference (tier-7 network)
 *   transform_sweep end-to-end transformApp + select
 *   runtime_batch   Runtime::processFrames over a replicated frame set
 *
 * Every workload's Blocked result is cross-checked bit-exactly against
 * the Naive oracle while it is being timed; a divergence exits 1 — a
 * speedup that changed the numbers would be a bug, not a win.
 *
 * Results go to stdout and to BENCH_ml_kernels.run.json (in
 * KODAN_BENCH_CSV_DIR when set, else the bench cache directory). The
 * committed BENCH_ml_kernels.json at the repo root is the cross-PR
 * trajectory maintained by `kodan-report aggregate` (see
 * scripts/check_regressions.sh).
 *
 * --assert-speedup enforces the acceptance floors (>= 3x mlp_forward,
 * >= 1.5x transform_sweep); left off in the timer-tolerant regression
 * smoke where wall-clock is too noisy to gate on.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/tiler.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace kodan;

double
timeSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Measurement
{
    std::string workload;
    double naive_seconds = 0.0;
    double blocked_seconds = 0.0;
    double speedup = 0.0;
    double gflops = 0.0; // Blocked-path throughput where meaningful
};

ml::Matrix
randomMatrix(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    ml::Matrix m(rows, cols);
    for (double &v : m.data()) {
        v = rng.uniform(-1.0, 1.0);
    }
    return m;
}

bool
sameBits(const ml::Matrix &a, const ml::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(double)) == 0;
}

core::TransformOptions
sweepOptions()
{
    core::TransformOptions options;
    options.train_frames = 40;
    options.val_frames = 24;
    options.specialize.max_train_blocks = 16000;
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bool assert_speedup = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--assert-speedup") {
            assert_speedup = true;
        }
    }
    bench::banner("ML kernel layer: Blocked vs Naive",
                  "the kernel layer of DESIGN.md; no paper figure");

    // Per-core comparison: the kernels themselves are serial; outer
    // parallelism belongs to bench_parallel_speedup.
    util::setGlobalThreads(1);
    std::vector<Measurement> measurements;

    // ---- Workload 1: raw GEMM, MLP-shaped (batch x fan_in x fan_out).
    {
        const std::size_t m = 4096, k = 64, n = 64;
        const int reps = 40;
        util::Rng rng(7);
        const ml::Matrix a = randomMatrix(m, k, rng);
        const ml::Matrix b = randomMatrix(k, n, rng);
        Measurement mm;
        mm.workload = "gemm_4096x64x64";
        ml::Matrix naive, blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        mm.naive_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                naive = ml::Matrix::multiply(a, b);
            }
        });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        mm.blocked_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                blocked = ml::Matrix::multiply(a, b);
            }
        });
        if (!sameBits(naive, blocked)) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: gemm "
                         "backends disagree\n";
            return 1;
        }
        const double flops = 2.0 * static_cast<double>(m * k * n) * reps;
        mm.gflops = mm.blocked_seconds > 0.0
                        ? flops / mm.blocked_seconds / 1e9
                        : 0.0;
        measurements.push_back(mm);
    }

    // ---- Workload 2: batched tier-7 surrogate inference (the heaviest
    // deployed architecture — the computational bottleneck the paper
    // targets).
    {
        const std::size_t rows = std::size_t{256} * data::kBlocksPerTile;
        const int reps = 30;
        util::Rng rng(11);
        ml::Mlp net(core::Application{7}.surrogateConfig(), rng);
        const ml::Matrix x =
            randomMatrix(rows, data::kBlockInputDim, rng);
        Measurement mm;
        mm.workload = "mlp_forward_tier7";
        ml::Matrix naive, blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        mm.naive_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                net.forwardBatch(x, naive);
            }
        });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        mm.blocked_seconds = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                net.forwardBatch(x, blocked);
            }
        });
        if (!sameBits(naive, blocked)) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: "
                         "mlp_forward backends disagree\n";
            return 1;
        }
        const double flops =
            2.0 * static_cast<double>(net.parameterCount()) *
            static_cast<double>(rows) * reps;
        mm.gflops = mm.blocked_seconds > 0.0
                        ? flops / mm.blocked_seconds / 1e9
                        : 0.0;
        measurements.push_back(mm);
    }

    // ---- Workloads 3 + 4: the end-to-end paths the kernels serve.
    {
        const data::GeoModel world;
        const core::Transformer transformer(sweepOptions());
        // Shared data preparation runs once on the default backend; the
        // timed region is the per-application transform + selection.
        const auto shared = transformer.prepareData(world);
        const auto profile = core::SystemProfile::landsat8(
            hw::Target::Orin15W, shared.prevalence);

        Measurement sweep;
        sweep.workload = "transform_sweep";
        double dvd_naive = 0.0, dvd_blocked = 0.0;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        sweep.naive_seconds = timeSeconds([&] {
            const auto artifacts =
                transformer.transformApp(core::Application{4}, shared);
            dvd_naive = transformer.select(artifacts, profile).outcome.dvd;
        });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        sweep.blocked_seconds = timeSeconds([&] {
            const auto artifacts =
                transformer.transformApp(core::Application{4}, shared);
            dvd_blocked =
                transformer.select(artifacts, profile).outcome.dvd;
        });
        if (dvd_naive != dvd_blocked) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: sweep dvd "
                      << dvd_blocked << " != " << dvd_naive << "\n";
            return 1;
        }
        measurements.push_back(sweep);

        // Deployed runtime over a replicated validation frame set.
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        const auto artifacts =
            transformer.transformApp(core::Application{4}, shared);
        const auto selected = transformer.select(artifacts, profile);
        const core::Runtime runtime(selected.logic, shared.engine.get(),
                                    &artifacts.zoo, hw::Target::Orin15W);
        std::vector<data::FrameSample> frames;
        for (int rep = 0; rep < 8; ++rep) {
            frames.insert(frames.end(), shared.val.begin(),
                          shared.val.end());
        }
        Measurement batch;
        batch.workload = "runtime_batch";
        core::FrameReport report_naive, report_blocked;
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        batch.naive_seconds = timeSeconds(
            [&] { report_naive = runtime.processFrames(frames); });
        ml::kernels::setBackend(ml::kernels::Backend::Blocked);
        batch.blocked_seconds = timeSeconds(
            [&] { report_blocked = runtime.processFrames(frames); });
        if (report_naive.compute_time != report_blocked.compute_time ||
            report_naive.product_fraction !=
                report_blocked.product_fraction) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: runtime "
                         "batch backends disagree\n";
            return 1;
        }
        measurements.push_back(batch);
    }
    util::setGlobalThreads(0);

    for (auto &m : measurements) {
        m.speedup = m.blocked_seconds > 0.0
                        ? m.naive_seconds / m.blocked_seconds
                        : 0.0;
    }

    // Feed the measurements into the telemetry snapshot so the
    // kodan-report pipeline (check_regressions.sh baseline diff +
    // BENCH_ml_kernels.json trajectory) sees them: wall-clock as timers
    // (diffed with the machine-noise tolerance), derived ratios under
    // bench.ml_kernels.ratio.* (excluded from the diff, recorded in the
    // trajectory).
#ifndef KODAN_TELEMETRY_DISABLED
    if (telemetry::enabled()) {
        auto &reg = telemetry::registry();
        for (const auto &m : measurements) {
            reg.timer("bench.ml_kernels.time." + m.workload + ".naive")
                .record(m.naive_seconds);
            reg.timer("bench.ml_kernels.time." + m.workload + ".blocked")
                .record(m.blocked_seconds);
            reg.gauge("bench.ml_kernels.ratio." + m.workload + ".speedup")
                .set(m.speedup);
            if (m.gflops > 0.0) {
                reg.gauge("bench.ml_kernels.ratio." + m.workload +
                          ".gflops")
                    .set(m.gflops);
            }
        }
    }
#endif

    util::TablePrinter table({"workload", "naive (s)", "blocked (s)",
                              "speedup", "GFLOP/s"});
    for (const auto &m : measurements) {
        table.addRow({m.workload,
                      util::TablePrinter::fmt(m.naive_seconds, 3),
                      util::TablePrinter::fmt(m.blocked_seconds, 3),
                      util::TablePrinter::fmt(m.speedup, 2),
                      m.gflops > 0.0 ? util::TablePrinter::fmt(m.gflops, 2)
                                     : std::string("-")});
    }
    table.print(std::cout);
    std::cout << "\nAll workloads at KODAN_THREADS=1; every Blocked "
                 "result verified bit-identical to the Naive oracle.\n";
    bench::emitCsv("bench_ml_kernels", table);

    // JSON record for the perf trajectory.
    const std::string path = bench::runRecordPath("ml_kernels");
    std::ofstream json(path);
    if (json) {
        json << "{\n  \"measurements\": [\n";
        for (std::size_t i = 0; i < measurements.size(); ++i) {
            const auto &m = measurements[i];
            json << "    {\"workload\": \"" << m.workload
                 << "\", \"naive_seconds\": " << m.naive_seconds
                 << ", \"blocked_seconds\": " << m.blocked_seconds
                 << ", \"speedup\": " << m.speedup
                 << ", \"gflops\": " << m.gflops << "}"
                 << (i + 1 < measurements.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
        std::cerr << "[kodan-bench] wrote " << path << "\n";
    }

    if (assert_speedup) {
        int status = 0;
        for (const auto &m : measurements) {
            double floor = 0.0;
            if (m.workload == "mlp_forward_tier7") {
                floor = 3.0;
            } else if (m.workload == "transform_sweep") {
                floor = 1.5;
            }
            if (floor > 0.0 && m.speedup < floor) {
                std::cerr << "[kodan-bench] SPEEDUP FLOOR MISSED: "
                          << m.workload << " " << m.speedup << "x < "
                          << floor << "x\n";
                status = 1;
            }
        }
        if (status != 0) {
            return status;
        }
        std::cout << "Speedup floors met (mlp_forward >= 3x, "
                     "transform_sweep >= 1.5x).\n";
    }
    return 0;
}
