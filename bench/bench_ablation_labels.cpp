/**
 * @file
 * Ablation: specialized-model training labels.
 *
 * The paper's general framework distills the reference application's
 * outputs into the specialized models (Section 3.3); its evaluation
 * applications are trained on the catalogue's truth masks (Section 4).
 * This bench compares the two for App 4: distillation inherits the
 * (domain-shifted) reference's errors, truth-mask training does not.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

struct Row
{
    const char *name;
    core::DeploymentOutcome kodan;
    double spec_precision; // best specialized precision, ocean context
};

Row
runWith(bool labels_from_reference, const char *name)
{
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    options.specialize.labels_from_reference = labels_from_reference;
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const auto artifacts =
        transformer.transformApp(core::Application{4}, shared);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto result = transformer.select(artifacts, profile);

    // Best specialized-model precision across contexts at the reference
    // tiling (diagnostic for how much label quality matters).
    double best = 0.0;
    for (const auto &table : artifacts.tables) {
        if (table.tiles_per_side != 6) {
            continue;
        }
        for (int c = 0; c < table.contextCount(); ++c) {
            for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
                if (table.actions[c][a].kind !=
                        core::ActionKind::RunModel ||
                    table.stats[c][a].bits_fraction <= 0.0) {
                    continue;
                }
                best = std::max(best, table.stats[c][a].density());
            }
        }
    }
    return {name, result.outcome, best};
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("Ablation: specialized-model training labels (App 4, "
                  "Orin 15W)",
                  "the Section 3.3 labelling discussion");

    const Row truth = runWith(false, "truth masks (Section 4)");
    const Row distilled =
        runWith(true, "reference distillation (Section 3.3)");

    util::TablePrinter table({"labels", "Kodan DVD", "frame time (s)",
                              "best specialized precision"});
    for (const Row &row : {truth, distilled}) {
        table.addRow({row.name,
                      util::TablePrinter::fmt(row.kodan.dvd),
                      util::TablePrinter::fmt(row.kodan.frame_time, 1),
                      util::TablePrinter::fmt(row.spec_precision)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: truth-mask training matches or beats\n"
                 "distillation, because distilled students inherit the\n"
                 "legacy reference's domain-shift errors; the gap bounds\n"
                 "how much of Kodan's benefit depends on label quality.\n";
    return 0;
}
