/**
 * @file
 * Wall-clock speedup of the deterministic parallel execution layer on
 * the three hot paths (transformer sweep, batch runtime, mission sim),
 * swept over thread counts. Results go to stdout and to
 * BENCH_parallel_speedup.run.json (in KODAN_BENCH_CSV_DIR when set, else
 * the bench cache directory). The committed BENCH_parallel_speedup.json at
 * the repo root is the cross-PR trajectory maintained by `kodan-report
 * aggregate` (see scripts/check_regressions.sh) — the raw run file uses
 * a different name so running the bench from the repo root can never
 * clobber the trajectory.
 *
 * Every workload is also checked for thread-count invariance while it is
 * being timed: a speedup that changed the numbers would be a bug, not a
 * win.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "sim/mission.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace kodan;

double
timeSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Measurement
{
    std::string workload;
    int threads;
    double seconds;
    double speedup; // vs the same workload at 1 thread
};

core::TransformOptions
sweepOptions()
{
    core::TransformOptions options;
    options.train_frames = 40;
    options.val_frames = 24;
    options.specialize.max_train_blocks = 16000;
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("Parallel execution layer: wall-clock speedup",
                  "the threading model of DESIGN.md; no paper figure");

    const std::vector<int> thread_counts = {1, 2, 4};
    std::vector<Measurement> measurements;

    // Shared inputs, prepared once (serial stage).
    util::setGlobalThreads(1);
    const data::GeoModel world;
    const core::Transformer transformer(sweepOptions());
    const auto shared = transformer.prepareData(world);
    const auto profile =
        core::SystemProfile::landsat8(hw::Target::Orin15W,
                                      shared.prevalence);

    // Workload 1: per-application transformer sweep (tables + select).
    double sweep_dvd_at_1 = 0.0;
    for (int threads : thread_counts) {
        util::setGlobalThreads(threads);
        double dvd = 0.0;
        const double seconds = timeSeconds([&] {
            const auto artifacts =
                transformer.transformApp(core::Application{4}, shared);
            dvd = transformer.select(artifacts, profile).outcome.dvd;
        });
        if (threads == 1) {
            sweep_dvd_at_1 = dvd;
        } else if (dvd != sweep_dvd_at_1) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: sweep dvd "
                      << dvd << " != " << sweep_dvd_at_1 << " at "
                      << threads << " threads\n";
            return 1;
        }
        measurements.push_back({"transform_sweep", threads, seconds, 0.0});
    }

    // Workload 2: batch runtime over a replicated frame set.
    util::setGlobalThreads(1);
    const auto artifacts =
        transformer.transformApp(core::Application{4}, shared);
    const auto sweep = transformer.select(artifacts, profile);
    const core::Runtime runtime(sweep.logic, shared.engine.get(),
                                &artifacts.zoo, hw::Target::Orin15W);
    std::vector<data::FrameSample> frames;
    for (int rep = 0; rep < 8; ++rep) {
        frames.insert(frames.end(), shared.val.begin(), shared.val.end());
    }
    double batch_time_at_1 = 0.0;
    for (int threads : thread_counts) {
        util::setGlobalThreads(threads);
        core::FrameReport report;
        const double seconds =
            timeSeconds([&] { report = runtime.processFrames(frames); });
        if (threads == 1) {
            batch_time_at_1 = report.compute_time;
        } else if (report.compute_time != batch_time_at_1) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: batch "
                         "runtime diverged at "
                      << threads << " threads\n";
            return 1;
        }
        measurements.push_back({"runtime_batch", threads, seconds, 0.0});
    }

    // Workload 3: constellation mission simulation.
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(8);
    config.duration = 12.0 * 3600.0;
    config.scheduler_step = 20.0;
    config.contact_scan_step = 30.0;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.1;
    double mission_bits_at_1 = 0.0;
    for (int threads : thread_counts) {
        util::setGlobalThreads(threads);
        double bits = 0.0;
        const double seconds = timeSeconds([&] {
            bits = sim.run(config, filter).totals().bits_downlinked;
        });
        if (threads == 1) {
            mission_bits_at_1 = bits;
        } else if (bits != mission_bits_at_1) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: mission "
                         "sim diverged at "
                      << threads << " threads\n";
            return 1;
        }
        measurements.push_back({"mission_sim", threads, seconds, 0.0});
    }
    util::setGlobalThreads(0);

    // Speedups vs the 1-thread run of the same workload.
    for (auto &m : measurements) {
        for (const auto &base : measurements) {
            if (base.workload == m.workload && base.threads == 1) {
                m.speedup = m.seconds > 0.0 ? base.seconds / m.seconds
                                            : 0.0;
            }
        }
    }

    util::TablePrinter table(
        {"workload", "threads", "wall (s)", "speedup vs 1T"});
    for (const auto &m : measurements) {
        table.addRow({m.workload,
                      util::TablePrinter::fmt(
                          static_cast<long long>(m.threads)),
                      util::TablePrinter::fmt(m.seconds, 3),
                      util::TablePrinter::fmt(m.speedup, 2)});
    }
    table.print(std::cout);
    std::cout << "\nHardware concurrency: "
              << std::thread::hardware_concurrency()
              << " (speedup is bounded by available cores; results are "
                 "bit-identical at every thread count by construction)\n";
    bench::emitCsv("bench_parallel_speedup", table);

    // JSON record for the perf trajectory.
    const std::string path = bench::runRecordPath("parallel_speedup");
    std::ofstream json(path);
    if (json) {
        json << "{\n  \"hardware_concurrency\": "
             << std::thread::hardware_concurrency()
             << ",\n  \"measurements\": [\n";
        for (std::size_t i = 0; i < measurements.size(); ++i) {
            const auto &m = measurements[i];
            json << "    {\"workload\": \"" << m.workload
                 << "\", \"threads\": " << m.threads
                 << ", \"wall_seconds\": " << m.seconds
                 << ", \"speedup_vs_1t\": " << m.speedup << "}"
                 << (i + 1 < measurements.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
        std::cerr << "[kodan-bench] wrote " << path << "\n";
    }
    return 0;
}
