/**
 * @file
 * Figure 2: global frames observed vs frames downlinked per orbit
 * period as constellation population grows, for a hyperspectral
 * Landsat-8-like payload. Observation count grows linearly; downlink
 * first claims idle ground-station time, then saturates.
 */

#include <iostream>

#include "common.hpp"
#include "orbit/propagator.hpp"
#include "sim/mission.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Downlink gap vs constellation size", "Figure 2");

    const orbit::J2Propagator reference(orbit::OrbitalElements::landsat8());
    const double period = reference.nodalPeriod();

    util::TablePrinter table({"satellites", "frames seen", "frames down",
                              "seen/down", "idle station s"});
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    for (int sats : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56}) {
        sim::MissionConfig config =
            sim::MissionConfig::landsatConstellation(sats);
        // Hyperspectral frames (the paper's "hyperspectral, 10K image
        // frames"): ~77 Gbit each, so only a handful fit per pass.
        config.camera = sense::CameraModel::landsat8Hyperspectral();
        config.duration = period;
        config.scheduler_step = 10.0;
        const auto result =
            sim.run(config, sim::FilterBehavior::bentPipe());
        const auto totals = result.totals();
        table.addRow(
            {util::TablePrinter::fmt(static_cast<long long>(sats)),
             util::TablePrinter::fmt(
                 static_cast<long long>(totals.frames_observed)),
             util::TablePrinter::fmt(totals.frames_downlinked, 1),
             util::TablePrinter::fmt(
                 totals.frames_downlinked > 0.0
                     ? totals.frames_observed / totals.frames_downlinked
                     : 0.0,
                 1),
             util::TablePrinter::fmt(result.idle_station_seconds, 0)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: observed frames grow linearly with\n"
                 "satellite count while downlinked frames saturate once\n"
                 "idle ground-station time is exhausted (paper: 5 frames\n"
                 "down for 1 satellite, ~60 for 16, flat beyond).\n";
    return 0;
}
