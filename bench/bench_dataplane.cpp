/**
 * @file
 * Staged data plane vs batch scheduler: wall-clock over the same
 * deployed runtime, at KODAN_THREADS=1 so the numbers isolate the
 * data-plane win (burst-batched inference, allocation-free steady
 * state) from outer parallelism. Three workloads:
 *
 *   runtime_batch   Runtime::processFrames (the baseline scheduler)
 *   staged_burst1   PipelineRuntime, burst=1 (lazy tiling alone)
 *   staged_burst8   PipelineRuntime, burst=8 (the default: lazy tiling
 *                   + cross-frame burst-batched inference)
 *
 * The staged win is structural, not kernel-level: the data plane tiles
 * lazily (stats + classification first, block decimation only for the
 * tiles that reach a model), so every elided tile skips the most
 * expensive tiling pass. Wall-clock is taken as the best of three
 * timed repetitions per path to keep the gate meaningful on noisy
 * shared machines.
 *
 * Every staged result is cross-checked bit-exactly against the batch
 * report while it is being timed; a divergence exits 1 — the data
 * plane's whole contract is that it changes the schedule, never the
 * bits. A final open-loop run through LoadGenerator reports the
 * sustainable frames/s under structural backpressure.
 *
 * The allocation guard re-runs the warmed burst-16 pipeline with a
 * counting operator new and exits 1 if the steady state heap-allocates
 * at all — the zero-copy claim, enforced.
 *
 * Results go to stdout and BENCH_dataplane.run.json (in
 * KODAN_BENCH_CSV_DIR when set, else the bench cache directory). The
 * committed BENCH_dataplane.json at the repo root is the cross-PR
 * trajectory maintained by `kodan-report aggregate` (see
 * scripts/check_regressions.sh).
 *
 * --assert-speedup enforces the acceptance floor (staged_burst8 >=
 * 1.05x runtime_batch); left off in the timer-tolerant regression
 * smoke where wall-clock is too noisy to gate on. --stats turns on
 * pipeline.* telemetry (ring gauges, stage timers, and the
 * `pipeline.ring.depth` journal events kodan-top's queue pane reads).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/runtime.hpp"
#include "pipeline/loadgen.hpp"
#include "pipeline/pipeline_runtime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

// ---------------------------------------------------------------------
// Counting allocator: every global new/delete in the binary funnels
// through here. Counting is off except inside the guard phase, so the
// override costs one relaxed load per allocation elsewhere.

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void *
countedAlloc(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    }
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr) {
        throw std::bad_alloc();
    }
    return p;
}

void *
countedAllocAligned(std::size_t size, std::size_t align)
{
    if (g_count_allocs.load(std::memory_order_relaxed)) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    }
    const std::size_t rounded = (size + align - 1) / align * align;
    void *p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
    if (p == nullptr) {
        throw std::bad_alloc();
    }
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

// ---------------------------------------------------------------------

namespace {

using namespace kodan;

double
timeSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}


struct Measurement
{
    std::string workload;
    double batch_seconds = 0.0;
    double staged_seconds = 0.0;
    double speedup = 0.0;
    double fps = 0.0; // staged-path throughput
};

core::TransformOptions
sweepOptions()
{
    core::TransformOptions options;
    options.train_frames = 40;
    options.val_frames = 24;
    options.specialize.max_train_blocks = 16000;
    return options;
}

bool
sameReport(const core::FrameReport &a, const core::FrameReport &b)
{
    return a.compute_time == b.compute_time &&
           a.product_fraction == b.product_fraction &&
           a.product_high_fraction == b.product_high_fraction &&
           a.tiles_discarded == b.tiles_discarded &&
           a.tiles_downlinked == b.tiles_downlinked &&
           a.tiles_modeled == b.tiles_modeled &&
           a.cells.tp() == b.cells.tp() && a.cells.fp() == b.cells.fp() &&
           a.cells.tn() == b.cells.tn() && a.cells.fn() == b.cells.fn();
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bool assert_speedup = false;
    bool stats = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--assert-speedup") {
            assert_speedup = true;
        } else if (arg == "--stats") {
            stats = true;
        }
    }
    bench::banner("Staged data plane vs batch scheduler",
                  "the data-plane layer of DESIGN.md; no paper figure");

    // Per-core comparison: outer parallelism belongs to
    // bench_parallel_speedup; here one worker runs the whole span so
    // the delta is pure scheduling (staging + burst batching).
    util::setGlobalThreads(1);

    // The deployed runtime the two schedulers share: tier-4 transform +
    // selection on the standard Landsat profile, as bench_ml_kernels.
    const data::GeoModel world;
    const core::Transformer transformer(sweepOptions());
    const auto shared = transformer.prepareData(world);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto artifacts =
        transformer.transformApp(core::Application{4}, shared);
    const auto selected = transformer.select(artifacts, profile);
    const core::Runtime runtime(selected.logic, shared.engine.get(),
                                &artifacts.zoo, hw::Target::Orin15W);

    // Frame set: the validation pool replicated 8x (192 frames) — big
    // enough that steady state dominates ring fill/drain.
    std::vector<data::FrameSample> frames;
    for (int rep = 0; rep < 8; ++rep) {
        frames.insert(frames.end(), shared.val.begin(),
                      shared.val.end());
    }
    const int reps = 3;
    const int tries = 3;

    core::FrameReport report_batch;
    report_batch = runtime.processFrames(frames); // warm

    const std::size_t bursts[] = {1, 8};
    std::vector<pipeline::PipelineRuntime *> pipelines;
    pipeline::PipelineRuntime::Options base_options;
    base_options.workers = 1;
    base_options.stats = stats;
    for (const std::size_t burst : bursts) {
        auto options = base_options;
        options.burst = burst;
        auto *staged = new pipeline::PipelineRuntime(runtime, options);
        pipelines.push_back(staged);
        // Warm run doubles as the equivalence check.
        const auto warm = staged->processFrames(frames);
        if (!sameReport(warm, report_batch)) {
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: staged "
                         "burst="
                      << burst << " disagrees with the batch path\n";
            return 1;
        }
    }

    // Timing: tries are interleaved across paths (batch, then each
    // staged config, repeated) so slow machine phases hit every path
    // alike; each path keeps its best try.
    double batch_seconds = 0.0;
    std::vector<double> staged_seconds(std::size(bursts), 0.0);
    core::FrameReport report_staged;
    for (int attempt = 0; attempt < tries; ++attempt) {
        const double b = timeSeconds([&] {
            for (int r = 0; r < reps; ++r) {
                report_batch = runtime.processFrames(frames);
            }
        });
        batch_seconds =
            attempt == 0 ? b : std::min(batch_seconds, b);
        for (std::size_t p = 0; p < pipelines.size(); ++p) {
            const double s = timeSeconds([&] {
                for (int r = 0; r < reps; ++r) {
                    report_staged = pipelines[p]->processFrames(frames);
                }
            });
            staged_seconds[p] =
                attempt == 0 ? s : std::min(staged_seconds[p], s);
            if (!sameReport(report_staged, report_batch)) {
                std::cerr << "[kodan-bench] DETERMINISM VIOLATION: "
                             "staged burst="
                          << bursts[p] << " diverged while being timed\n";
                return 1;
            }
        }
    }

    std::vector<Measurement> measurements;
    for (std::size_t p = 0; p < pipelines.size(); ++p) {
        Measurement mm;
        mm.workload = "staged_burst" + std::to_string(bursts[p]);
        mm.batch_seconds = batch_seconds;
        mm.staged_seconds = staged_seconds[p];
        mm.speedup = mm.staged_seconds > 0.0
                         ? mm.batch_seconds / mm.staged_seconds
                         : 0.0;
        mm.fps = mm.staged_seconds > 0.0
                     ? static_cast<double>(frames.size()) * reps /
                           mm.staged_seconds
                     : 0.0;
        measurements.push_back(mm);
    }

    // Open-loop saturation: offer 2x the materialized set through the
    // cycling load generator; the rate is what admission sustains.
    pipeline::LoadGenerator loadgen(frames);
    const auto load =
        loadgen.run(*pipelines.back(), frames.size() * 2);

    // ---- Allocation guard: the warmed burst-16 pipeline must not
    // touch the heap in steady state. Telemetry is switched off for
    // the guarded run (journal buffers legitimately grow), making this
    // a pure data-plane property: slots, rings, and scratch arenas are
    // all pre-sized.
    const bool telemetry_was_enabled = telemetry::enabled();
    const bool journal_was_enabled = telemetry::journalEnabled();
    telemetry::setEnabled(false);
    telemetry::setJournalEnabled(false);
    pipelines.back()->processFrames(frames); // warm telemetry-off path
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    const auto guarded = pipelines.back()->processFrames(frames);
    g_count_allocs.store(false);
    telemetry::setEnabled(telemetry_was_enabled);
    telemetry::setJournalEnabled(journal_was_enabled);
    const std::uint64_t steady_allocs = g_alloc_count.load();
    if (!sameReport(guarded, report_batch)) {
        std::cerr << "[kodan-bench] DETERMINISM VIOLATION: guarded run "
                     "disagrees with the batch path\n";
        return 1;
    }
    if (steady_allocs != 0) {
        std::cerr << "[kodan-bench] ALLOCATION GUARD FAILED: "
                  << steady_allocs
                  << " heap allocations in a warmed steady-state run "
                     "(expected 0)\n";
        return 1;
    }

    util::setGlobalThreads(0);

    // Feed the measurements into the telemetry snapshot so the
    // kodan-report pipeline (check_regressions.sh baseline diff +
    // BENCH_dataplane.json trajectory) sees them: wall-clock as timers
    // (diffed with the machine-noise tolerance), derived ratios under
    // bench.dataplane.ratio.* (excluded from the diff, recorded in the
    // trajectory).
#ifndef KODAN_TELEMETRY_DISABLED
    if (telemetry::enabled()) {
        auto &reg = telemetry::registry();
        reg.timer("bench.dataplane.time.runtime_batch")
            .record(batch_seconds);
        for (const auto &m : measurements) {
            reg.timer("bench.dataplane.time." + m.workload)
                .record(m.staged_seconds);
            reg.gauge("bench.dataplane.ratio." + m.workload + ".speedup")
                .set(m.speedup);
            reg.gauge("bench.dataplane.ratio." + m.workload + ".fps")
                .set(m.fps);
        }
        reg.timer("bench.dataplane.time.loadgen").record(load.seconds);
        reg.gauge("bench.dataplane.ratio.loadgen.fps").set(load.fps);
    }
#endif

    util::TablePrinter table(
        {"workload", "batch (s)", "staged (s)", "speedup", "frames/s"});
    for (const auto &m : measurements) {
        table.addRow({m.workload,
                      util::TablePrinter::fmt(m.batch_seconds, 3),
                      util::TablePrinter::fmt(m.staged_seconds, 3),
                      util::TablePrinter::fmt(m.speedup, 2),
                      util::TablePrinter::fmt(m.fps, 1)});
    }
    table.addRow({"loadgen_openloop", "-",
                  util::TablePrinter::fmt(load.seconds, 3), "-",
                  util::TablePrinter::fmt(load.fps, 1)});
    table.print(std::cout);
    std::cout << "\nAll workloads at KODAN_THREADS=1, one worker; every "
                 "staged report verified bit-identical to the batch "
                 "path. Steady-state heap allocations: "
              << steady_allocs << ".\n";
    bench::emitCsv("bench_dataplane", table);

    // JSON record for the perf trajectory.
    const std::string path = bench::runRecordPath("dataplane");
    std::ofstream json(path);
    if (json) {
        json << "{\n  \"steady_state_allocs\": " << steady_allocs
             << ",\n  \"loadgen_fps\": " << load.fps
             << ",\n  \"measurements\": [\n";
        for (std::size_t i = 0; i < measurements.size(); ++i) {
            const auto &m = measurements[i];
            json << "    {\"workload\": \"" << m.workload
                 << "\", \"batch_seconds\": " << m.batch_seconds
                 << ", \"staged_seconds\": " << m.staged_seconds
                 << ", \"speedup\": " << m.speedup
                 << ", \"fps\": " << m.fps << "}"
                 << (i + 1 < measurements.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
        std::cerr << "[kodan-bench] wrote " << path << "\n";
    }

    int status = 0;
    if (assert_speedup) {
        const double floor = 1.05;
        for (const auto &m : measurements) {
            if (m.workload == "staged_burst8" && m.speedup < floor) {
                std::cerr << "[kodan-bench] SPEEDUP FLOOR MISSED: "
                          << m.workload << " " << m.speedup << "x < "
                          << floor << "x\n";
                status = 1;
            }
        }
        if (status == 0) {
            std::cout << "Speedup floor met (staged_burst8 >= " << floor
                      << "x) and steady state allocation-free.\n";
        }
    }
    for (auto *p : pipelines) {
        delete p;
    }
    return status;
}
