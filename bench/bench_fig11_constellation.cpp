/**
 * @file
 * Figure 11: reduction in the number of satellites needed for full
 * ground-track processing coverage. Prior OEC work distributes frames
 * across a pipeline of ceil(frame_time / deadline) satellites; Kodan
 * shrinks frame time instead, reducing the pipeline up to ~12x.
 */

#include <iostream>

#include "common.hpp"
#include "sim/coverage.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner(
        "Satellites required for full ground-track coverage (Orin 15W)",
        "Figure 11");

    const auto profile = bench::profileFor(hw::Target::Orin15W);
    util::TablePrinter table({"app", "direct sats", "max-prec-tiling sats",
                              "Kodan sats", "reduction (direct/Kodan)"});
    double best_reduction = 0.0;
    for (int tier = 1; tier <= hw::kAppCount; ++tier) {
        const auto &app = bench::appMeasurements(tier);
        const auto direct = bench::directDeploy(app, profile);

        // "Max. Prec. Tiling": reference model everywhere, but at the
        // tiling whose products have the best precision.
        double best_density = -1.0;
        double max_prec_time = direct.frame_time;
        for (const auto &dt : app.direct_tables) {
            const double density = dt.stats[0][0].density();
            if (density > best_density) {
                best_density = density;
                const auto outcome = core::evaluateLogic(
                    profile, dt, {dt.actions[0][0]}, false, true);
                max_prec_time = outcome.frame_time;
            }
        }

        const auto kodan = bench::kodanSelect(app, profile);
        const int sats_direct = sim::satellitesForFullCoverage(
            direct.frame_time, profile.frame_deadline);
        const int sats_prec = sim::satellitesForFullCoverage(
            max_prec_time, profile.frame_deadline);
        const int sats_kodan = sim::satellitesForFullCoverage(
            kodan.outcome.frame_time, profile.frame_deadline);
        const double reduction =
            static_cast<double>(sats_direct) / sats_kodan;
        best_reduction = std::max(best_reduction, reduction);
        table.addRow({"App " + std::to_string(tier),
                      util::TablePrinter::fmt(
                          static_cast<long long>(sats_direct)),
                      util::TablePrinter::fmt(
                          static_cast<long long>(sats_prec)),
                      util::TablePrinter::fmt(
                          static_cast<long long>(sats_kodan)),
                      util::TablePrinter::fmt(reduction, 1)});
    }
    table.print(std::cout);
    std::cout << "\nMaximum reduction factor: "
              << util::TablePrinter::fmt(best_reduction, 1)
              << "x (paper: up to 12x).\n";
    return 0;
}
