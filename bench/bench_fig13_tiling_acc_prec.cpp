/**
 * @file
 * Figure 13: effect of frame tiling (121 / 36 / 16 / 9 tiles per frame)
 * on application accuracy (left) and precision (right). Each app has an
 * empirically optimal tiling, and the accuracy-optimal and
 * precision-optimal tilings can differ.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Effect of tiling on accuracy and precision",
                  "Figure 13");

    const int tilings[] = {121, 36, 16, 9};

    std::cout << "Accuracy (fraction of cells labeled correctly):\n";
    util::TablePrinter acc({"app", "121 t/f", "36 t/f", "16 t/f",
                            "9 t/f", "best"});
    std::cout.flush();
    for (int tier = 1; tier <= hw::kAppCount; ++tier) {
        const auto &app = bench::appMeasurements(tier);
        std::vector<std::string> row = {"App " + std::to_string(tier)};
        int best_tiling = 0;
        double best = -1.0;
        for (int tiling : tilings) {
            for (const auto &table : app.direct_tables) {
                if (table.tiles_per_side * table.tiles_per_side !=
                    tiling) {
                    continue;
                }
                const double accuracy = table.stats[0][0].cell_accuracy;
                row.push_back(util::TablePrinter::fmt(accuracy));
                if (accuracy > best) {
                    best = accuracy;
                    best_tiling = tiling;
                }
            }
        }
        row.push_back(std::to_string(best_tiling));
        acc.addRow(row);
    }
    acc.print(std::cout);
    bench::emitCsv("fig13_tiling_accuracy", acc);

    std::cout << "\nPrecision (TP / (TP + FP) of kept cells):\n";
    util::TablePrinter prec({"app", "121 t/f", "36 t/f", "16 t/f",
                             "9 t/f", "best"});
    for (int tier = 1; tier <= hw::kAppCount; ++tier) {
        const auto &app = bench::appMeasurements(tier);
        std::vector<std::string> row = {"App " + std::to_string(tier)};
        int best_tiling = 0;
        double best = -1.0;
        for (int tiling : tilings) {
            for (const auto &table : app.direct_tables) {
                if (table.tiles_per_side * table.tiles_per_side !=
                    tiling) {
                    continue;
                }
                const double density = table.stats[0][0].density();
                row.push_back(util::TablePrinter::fmt(density));
                if (density > best) {
                    best = density;
                    best_tiling = tiling;
                }
            }
        }
        row.push_back(std::to_string(best_tiling));
        prec.addRow(row);
    }
    prec.print(std::cout);
    bench::emitCsv("fig13_tiling_precision", prec);

    std::cout << "\nExpected shape: an interior (app-dependent) optimum;\n"
                 "accuracy-optimal and precision-optimal tile counts can\n"
                 "differ (paper Fig. 13).\n";
    return 0;
}
