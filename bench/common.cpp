#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace kodan::bench {

namespace {

std::string
cachePath()
{
    if (const char *env = std::getenv("KODAN_BENCH_CACHE")) {
        return env;
    }
    if (const char *dir = std::getenv("KODAN_BENCH_CACHE_DIR")) {
        return std::string(dir) + "/kodan_bench_cache.txt";
    }
#ifdef KODAN_BENCH_CACHE_DEFAULT_DIR
    return std::string(KODAN_BENCH_CACHE_DEFAULT_DIR) +
           "/kodan_bench_cache.txt";
#else
    return "kodan_bench_cache.txt";
#endif
}

bool
refreshRequested()
{
    const char *env = std::getenv("KODAN_BENCH_REFRESH");
    return env != nullptr && std::string(env) == "1";
}

core::TransformOptions
benchOptions()
{
    core::TransformOptions options;
    options.train_frames = 100;
    options.val_frames = 44;
    options.specialize.max_train_blocks = 24000;
    return options;
}

core::MeasuredBundle
computeBundle()
{
    std::cerr << "[kodan-bench] computing measured bundle "
                 "(one-time transformation for Apps 1-7, "
              << util::globalThreadCount() << " thread(s))...\n";
    const auto start = std::chrono::steady_clock::now();
    const data::GeoModel world;
    const core::Transformer transformer(benchOptions());
    const auto shared = transformer.prepareData(world);

    core::MeasuredBundle bundle;
    bundle.prevalence = shared.prevalence;
    bundle.apps.resize(hw::kAppCount);

    // Each application transform is independent and deterministic; fan
    // the seven apps across the shared pool (KODAN_THREADS).
    util::parallelFor(hw::kAppCount, [&](std::size_t i) {
        const int tier = static_cast<int>(i) + 1;
        const auto artifacts =
            transformer.transformApp(core::Application{tier}, shared);
        core::MeasuredApp &measured = bundle.apps[i];
        measured.tier = tier;
        measured.tables = artifacts.tables;
        measured.direct_tables = artifacts.direct_tables;
        measured.direct_tiles_per_frame = artifacts.direct_tiles_per_frame;
        std::cerr << "[kodan-bench]   app " << tier << " done\n";
    });
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::cerr << "[kodan-bench] bundle computed in " << elapsed
              << " s wall clock\n";
    return bundle;
}

} // namespace

void
initHarness(int &argc, char **argv)
{
    telemetry::configureFromArgs(argc, argv);
}

const core::MeasuredBundle &
measuredBundle()
{
    static const core::MeasuredBundle bundle = [] {
        core::MeasuredBundle loaded;
        if (!refreshRequested() && core::tryLoadBundle(cachePath(),
                                                       loaded)) {
            std::cerr << "[kodan-bench] loaded cached bundle from "
                      << cachePath() << "\n";
            return loaded;
        }
        core::MeasuredBundle computed = computeBundle();
        core::storeBundle(cachePath(), computed);
        return computed;
    }();
    return bundle;
}

const core::MeasuredApp &
appMeasurements(int tier)
{
    const auto &bundle = measuredBundle();
    for (const auto &app : bundle.apps) {
        if (app.tier == tier) {
            return app;
        }
    }
    util::fatal("bench: no measurements for tier " + std::to_string(tier));
}

core::SystemProfile
profileFor(hw::Target target)
{
    return core::SystemProfile::landsat8(target,
                                         measuredBundle().prevalence);
}

const core::ContextActionTable &
directTable(const core::MeasuredApp &app)
{
    for (const auto &table : app.direct_tables) {
        if (table.tiles_per_side * table.tiles_per_side ==
            app.direct_tiles_per_frame) {
            return table;
        }
    }
    return app.direct_tables.front();
}

core::DeploymentOutcome
directDeploy(const core::MeasuredApp &app,
             const core::SystemProfile &profile)
{
    const auto &table = directTable(app);
    return core::evaluateLogic(profile, table, {table.actions[0][0]},
                               /*use_context_engine=*/false,
                               /*send_unprocessed_raw=*/true);
}

core::SweepResult
kodanSelect(const core::MeasuredApp &app,
            const core::SystemProfile &profile,
            const core::SweepOptions &options)
{
    const core::SelectionOptimizer optimizer(options);
    return optimizer.optimize(profile, app.tables);
}

void
emitCsv(const std::string &name, const util::TablePrinter &table)
{
    const char *dir = std::getenv("KODAN_BENCH_CSV_DIR");
    if (dir == nullptr) {
        return;
    }
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream file(path);
    if (!file) {
        std::cerr << "[kodan-bench] cannot write " << path << "\n";
        return;
    }
    table.writeCsv(file);
    std::cerr << "[kodan-bench] wrote " << path << "\n";
}

std::string
runRecordPath(const std::string &name)
{
    const std::string file = "BENCH_" + name + ".run.json";
    if (const char *dir = std::getenv("KODAN_BENCH_CSV_DIR")) {
        return std::string(dir) + "/" + file;
    }
    if (const char *dir = std::getenv("KODAN_BENCH_CACHE_DIR")) {
        return std::string(dir) + "/" + file;
    }
#ifdef KODAN_BENCH_CACHE_DEFAULT_DIR
    return std::string(KODAN_BENCH_CACHE_DEFAULT_DIR) + "/" + file;
#else
    return file;
#endif
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==================================================\n"
              << title << "\n"
              << "(reproduces " << paper_ref
              << " of Kodan, ASPLOS 2023)\n"
              << "==================================================\n\n";
}

} // namespace kodan::bench
