/**
 * @file
 * Table 1: per-tile processing time of the seven application
 * architectures on each hardware deployment target.
 *
 * Two parts:
 *  1. google-benchmark measurements of the kodan surrogate networks'
 *     per-tile inference cost on the host CPU (one tile = 64 block
 *     forward passes) — demonstrating the tiers' relative cost ordering;
 *  2. the anchored device-time model (the actual Table 1 values used by
 *     every experiment), printed for reference.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "core/types.hpp"
#include "data/tiler.hpp"
#include "hw/target.hpp"
#include "ml/mlp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

const ml::Mlp &
surrogate(int tier)
{
    static std::vector<ml::Mlp> nets = [] {
        util::Rng rng(42);
        std::vector<ml::Mlp> built;
        for (int t = 1; t <= hw::kAppCount; ++t) {
            built.emplace_back(core::Application{t}.surrogateConfig(),
                               rng);
        }
        return built;
    }();
    return nets[tier - 1];
}

void
perTileInference(benchmark::State &state)
{
    const int tier = static_cast<int>(state.range(0));
    const ml::Mlp &net = surrogate(tier);
    util::Rng rng(7);
    std::vector<double> input(data::kBlockInputDim);
    for (auto &v : input) {
        v = rng.normal(0.0, 1.0);
    }
    for (auto _ : state) {
        double sum = 0.0;
        for (int block = 0; block < data::kBlocksPerTile; ++block) {
            input[0] = block * 1e-3; // defeat value caching
            sum += net.predictProb(input.data());
        }
        benchmark::DoNotOptimize(sum);
    }
    state.counters["params"] =
        static_cast<double>(net.parameterCount());
}

} // namespace

BENCHMARK(perTileInference)->DenseRange(1, hw::kAppCount)->Name(
    "surrogate_per_tile");

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    std::cout << "==================================================\n"
                 "Per-tile processing times (Table 1 of Kodan, "
                 "ASPLOS 2023)\n"
                 "==================================================\n\n";

    std::cout << "Anchored device model (ms per tile):\n";
    util::TablePrinter table({"app", "architecture", "1070Ti", "i7-7800",
                              "Orin15W", "surrogate params"});
    for (int tier = 1; tier <= hw::kAppCount; ++tier) {
        table.addRow(
            {"App " + std::to_string(tier), hw::CostModel::tierName(tier),
             util::TablePrinter::fmt(
                 1e3 * hw::CostModel::tileTime(tier,
                                               hw::Target::Gtx1070Ti),
                 1),
             util::TablePrinter::fmt(
                 1e3 * hw::CostModel::tileTime(tier, hw::Target::I7_7800),
                 1),
             util::TablePrinter::fmt(
                 1e3 * hw::CostModel::tileTime(tier, hw::Target::Orin15W),
                 1),
             util::TablePrinter::fmt(static_cast<long long>(
                 hw::CostModel::tierParamCount(tier)))});
    }
    table.print(std::cout);
    std::cout << "\nHost-measured surrogate inference (relative cost "
                 "ordering):\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
