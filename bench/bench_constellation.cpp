/**
 * @file
 * Constellation-scale mission engine throughput probe: hundreds to
 * thousands of satellites over up to a simulated year through
 * ConstellationEngine (sharded scheduling, incremental ground-segment
 * allocation, streaming telemetry). No paper figure — this bench guards
 * the engine's throughput floor (satellite-days simulated per
 * wall-clock second) and its determinism contract.
 *
 * Results go to stdout and BENCH_constellation.run.json (in
 * KODAN_BENCH_CSV_DIR when set, else the bench cache directory); the
 * committed BENCH_constellation.json at the repo root is the cross-PR
 * trajectory maintained by `kodan-report aggregate` (see
 * scripts/check_regressions.sh).
 *
 * Flags (after the harness's --telemetry-out/--journal-out):
 *   --sats N               total satellites            (default 500)
 *   --planes P             orbital planes              (default 10)
 *   --phasing F            Walker phasing parameter    (default 1)
 *   --days D               simulated days              (default 365)
 *   --stations global|landsat  ground segment          (default global)
 *   --shard-size S         satellites per work unit    (default 16)
 *   --chunk-hours H        streaming chunk length      (default 24)
 *   --scan-step S          coarse contact scan step, s (default 120)
 *   --bin-hours B          telemetry bin width, hours  (default 0.5)
 *   --assert-throughput T  exit 1 below T sat-days/s   (default off)
 *   --verify               rerun a scaled-down scenario at 1/4/16
 *                          threads and fail on any bit divergence
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "sim/constellation.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace kodan;

double
timeSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

sim::ConstellationConfig
makeScenario(int sats, int planes, int phasing, double days,
             const std::string &stations, std::size_t shard_size,
             double chunk_hours, double scan_step, double bin_hours)
{
    sim::ConstellationConfig config;
    config.mission =
        sim::MissionConfig::makeConstellation(sats, planes, phasing);
    if (stations == "global") {
        config.mission.stations = ground::globalGroundSegment();
    }
    config.mission.duration = days * util::kSecondsPerDay;
    config.mission.scheduler_step = 30.0;
    config.mission.contact_scan_step = scan_step;
    config.mission.telemetry_bin_s = bin_hours * 3600.0;
    config.mission.telemetry_prefix = "constellation";
    config.shard_size = shard_size;
    config.chunk_s = chunk_hours * 3600.0;
    return config;
}

/** A Kodan-style on-orbit filter: costly, selective, compact products. */
sim::FilterBehavior
kodanFilter()
{
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.1;
    filter.product_fraction = 0.5;
    return filter;
}

bool
verifyThreadInvariance()
{
    // Recording off for the verify sweep: the harness's --telemetry-out
    // / --journal-out snapshots must capture only the main run, and the
    // ctest suite already pins telemetry bytes across thread counts.
    const bool metrics_on = telemetry::enabled();
    const bool journal_on = telemetry::journalEnabled();
    telemetry::setEnabled(false);
    telemetry::setJournalEnabled(false);
    const auto config =
        makeScenario(24, 4, 1, 1.0, "landsat", 7, 8.0, 60.0, 0.5);
    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);
    sim::MissionResult reference;
    bool ok = true;
    for (const int threads : {1, 4, 16}) {
        util::setGlobalThreads(threads);
        const auto result = engine.run(config, kodanFilter());
        util::setGlobalThreads(0);
        if (threads == 1) {
            reference = result;
            continue;
        }
        for (std::size_t s = 0;
             ok && s < result.per_satellite.size(); ++s) {
            const auto &x = reference.per_satellite[s];
            const auto &y = result.per_satellite[s];
            if (x.frames_observed != y.frames_observed ||
                x.bits_downlinked != y.bits_downlinked ||
                x.high_bits_downlinked != y.high_bits_downlinked ||
                x.contact_seconds != y.contact_seconds) {
                std::cerr << "[kodan-bench] DETERMINISM VIOLATION: "
                             "satellite "
                          << s << " diverged at " << threads
                          << " threads\n";
                ok = false;
            }
        }
        if (!ok) {
            break;
        }
    }
    telemetry::setEnabled(metrics_on);
    telemetry::setJournalEnabled(journal_on);
    if (ok) {
        std::cout
            << "thread invariance: OK (1/4/16 threads bit-identical)\n";
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);

    int sats = 500;
    int planes = 10;
    int phasing = 1;
    double days = 365.0;
    std::string stations = "global";
    std::size_t shard_size = 16;
    double chunk_hours = 24.0;
    // 120 s coarse scan for the throughput scenario: the adaptive
    // sweep still refines pass edges to sub-second accuracy, and the
    // rare sub-2-minute grazing pass the grid can miss is part of the
    // scenario definition, not a correctness concern (the tests pin
    // the sweep against the fixed grid at matched steps).
    double scan_step = 120.0;
    double bin_hours = 0.5;
    double assert_throughput = 0.0;
    bool verify = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--sats") {
            sats = std::stoi(next());
        } else if (arg == "--planes") {
            planes = std::stoi(next());
        } else if (arg == "--phasing") {
            phasing = std::stoi(next());
        } else if (arg == "--days") {
            days = std::stod(next());
        } else if (arg == "--stations") {
            stations = next();
        } else if (arg == "--shard-size") {
            shard_size = static_cast<std::size_t>(std::stoul(next()));
        } else if (arg == "--chunk-hours") {
            chunk_hours = std::stod(next());
        } else if (arg == "--scan-step") {
            scan_step = std::stod(next());
        } else if (arg == "--bin-hours") {
            bin_hours = std::stod(next());
        } else if (arg == "--assert-throughput") {
            assert_throughput = std::stod(next());
        } else if (arg == "--verify") {
            verify = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    bench::banner("Constellation-scale mission engine throughput",
                  "engine guard; no paper figure");

    if (verify && !verifyThreadInvariance()) {
        return 1;
    }

    const auto config =
        makeScenario(sats, planes, phasing, days, stations, shard_size,
                     chunk_hours, scan_step, bin_hours);
    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);
    sim::MissionResult result;
    const double wall = timeSeconds(
        [&] { result = engine.run(config, kodanFilter()); });
    const auto totals = result.totals();
    const double sat_days = static_cast<double>(sats) * days;
    const double throughput = wall > 0.0 ? sat_days / wall : 0.0;

    util::TablePrinter table({"metric", "value"});
    table.addRow({"satellites",
                  util::TablePrinter::fmt(static_cast<long long>(sats))});
    table.addRow({"planes",
                  util::TablePrinter::fmt(
                      static_cast<long long>(planes))});
    table.addRow({"stations",
                  util::TablePrinter::fmt(static_cast<long long>(
                      config.mission.stations.size()))});
    table.addRow({"simulated days", util::TablePrinter::fmt(days, 1)});
    table.addRow({"frames observed",
                  util::TablePrinter::fmt(static_cast<long long>(
                      totals.frames_observed))});
    table.addRow(
        {"bits downlinked",
         util::TablePrinter::fmt(totals.bits_downlinked, 0)});
    table.addRow({"downlink DVD", util::TablePrinter::fmt(totals.dvd(), 4)});
    table.addRow({"contact seconds",
                  util::TablePrinter::fmt(totals.contact_seconds, 0)});
    table.addRow({"wall seconds", util::TablePrinter::fmt(wall, 2)});
    table.addRow({"sat-days / wall-second",
                  util::TablePrinter::fmt(throughput, 1)});
    table.print(std::cout);
    std::cout << "\nHardware concurrency: "
              << std::thread::hardware_concurrency() << "\n";
    bench::emitCsv("bench_constellation", table);

    const std::string path = bench::runRecordPath("constellation");
    std::ofstream json(path);
    if (json) {
        json << "{\n  \"satellites\": " << sats
             << ",\n  \"planes\": " << planes
             << ",\n  \"days\": " << days
             << ",\n  \"stations\": " << config.mission.stations.size()
             << ",\n  \"shard_size\": " << shard_size
             << ",\n  \"frames_observed\": " << totals.frames_observed
             << ",\n  \"bits_downlinked\": " << totals.bits_downlinked
             << ",\n  \"wall_seconds\": " << wall
             << ",\n  \"sat_days_per_second\": " << throughput << "\n}\n";
    }

    if (assert_throughput > 0.0 && throughput < assert_throughput) {
        std::cerr << "[kodan-bench] THROUGHPUT REGRESSION: " << throughput
                  << " sat-days/s below the asserted floor of "
                  << assert_throughput << "\n";
        return 1;
    }
    return 0;
}
