/**
 * @file
 * Figure 15: context-based elision raises DVD by downlinking samples
 * from mostly-high-value contexts and discarding mostly-low-value ones,
 * freeing compute time for ambiguous contexts. Compared here without
 * model specialization (reference model only), isolating the elision
 * effect as the paper does.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Context-based elision and data value density",
                  "Figure 15");

    for (hw::Target target : hw::allTargets()) {
        const auto profile = bench::profileFor(target);
        std::cout << "Deployment to " << hw::targetName(target) << ":\n";
        util::TablePrinter table({"app", "direct deploy",
                                  "with elision", "improvement %"});
        for (int tier = 1; tier <= hw::kAppCount; ++tier) {
            const auto &app = bench::appMeasurements(tier);
            const auto direct = bench::directDeploy(app, profile);

            // Elision-only selection: reference model or elide, at the
            // direct-deploy tiling.
            core::SweepOptions options;
            options.allow_specialization = false;
            options.tile_counts = {app.direct_tiles_per_frame};
            core::MeasuredApp fixed = app;
            fixed.tables.clear();
            for (const auto &t : app.tables) {
                if (t.tiles_per_side * t.tiles_per_side ==
                    app.direct_tiles_per_frame) {
                    fixed.tables.push_back(t);
                }
            }
            const auto elision =
                bench::kodanSelect(fixed, profile, options);
            table.addRow(
                {"App " + std::to_string(tier),
                 util::TablePrinter::fmt(direct.dvd),
                 util::TablePrinter::fmt(elision.outcome.dvd),
                 util::TablePrinter::fmt(
                     100.0 * (elision.outcome.dvd - direct.dvd) /
                         direct.dvd,
                     1)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: elision helps most under the deepest\n"
                 "computational bottleneck (costly apps on the Orin);\n"
                 "gains shrink as the bottleneck eases (paper Fig. 15,\n"
                 "e.g. App 1: +39% on Orin, +34% on i7, less on 1070Ti).\n";
    return 0;
}
