/**
 * @file
 * Figure 9: processing time per frame (log scale in the paper) of direct
 * deployment versus Kodan on each target, against the frame deadline.
 * Kodan's tiling/elision choices pull frame time below the deadline.
 * The extra "Kodan int8" column re-projects the selected logic with
 * every RunModel action charged the quantized per-tile time
 * (CostModel::modelTimeQuant) — the what-if frame time of flipping
 * KODAN_QUANT=int8 on the same selection.
 */

#include <iostream>

#include "common.hpp"
#include "core/evaluate.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Time per frame: direct deploy vs Kodan", "Figure 9");

    for (hw::Target target : hw::allTargets()) {
        const auto profile = bench::profileFor(target);
        std::cout << "Deployment to " << hw::targetName(target)
                  << " (frame deadline "
                  << util::TablePrinter::fmt(profile.frame_deadline, 1)
                  << " s)\n";
        util::TablePrinter table({"app", "direct (s)", "Kodan (s)",
                                  "Kodan int8 (s)",
                                  "direct meets deadline",
                                  "Kodan meets deadline"});
        for (int tier = 1; tier <= hw::kAppCount; ++tier) {
            const auto &app = bench::appMeasurements(tier);
            const auto direct = bench::directDeploy(app, profile);
            const auto kodan = bench::kodanSelect(app, profile);
            // Re-project the selected logic with RunModel charged the
            // int8 per-tile time (the table row stats are unchanged —
            // the gate already bounded the accuracy/value drop).
            double quant_frame_time = kodan.outcome.frame_time;
            for (const auto &measured : app.tables) {
                if (measured.tiles_per_side ==
                    kodan.logic.tiles_per_side) {
                    quant_frame_time =
                        core::evaluateLogic(
                            profile, measured, kodan.logic.per_context,
                            /*use_context_engine=*/true,
                            /*send_unprocessed_raw=*/true,
                            /*force_quant_time=*/true)
                            .frame_time;
                    break;
                }
            }
            table.addRow(
                {"App " + std::to_string(tier),
                 util::TablePrinter::fmt(direct.frame_time, 1),
                 util::TablePrinter::fmt(kodan.outcome.frame_time, 1),
                 util::TablePrinter::fmt(quant_frame_time, 1),
                 direct.frame_time <= profile.frame_deadline ? "yes"
                                                             : "no",
                 kodan.outcome.frame_time <= profile.frame_deadline
                     ? "yes"
                     : "no"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expected shape: direct deployment misses the deadline\n"
                 "for every app on the Orin and most on the i7; Kodan\n"
                 "meets it everywhere (paper Fig. 9).\n";
    return 0;
}
