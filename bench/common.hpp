/**
 * @file
 * Shared machinery of the benchmark harness.
 *
 * Every figure bench needs the measured artifacts of the seven
 * applications. They are computed once (multi-threaded across
 * applications) and cached to a text bundle so re-running the suite is
 * cheap. Set KODAN_BENCH_REFRESH=1 to force recomputation,
 * KODAN_BENCH_CACHE=<path> to move the cache file, or
 * KODAN_BENCH_CACHE_DIR=<dir> to move just its directory (the default
 * is the build tree, never the source tree).
 */

#ifndef KODAN_BENCH_COMMON_HPP
#define KODAN_BENCH_COMMON_HPP

#include <string>

#include "core/io.hpp"
#include "core/kodan.hpp"
#include "util/table.hpp"

namespace kodan::bench {

/**
 * Standard harness setup for a bench main: consumes harness flags from
 * argv before the bench-specific parsing sees them —
 *   --telemetry-out <path>  enable metrics/tracing, write the snapshot
 *                           JSON (+ Chrome trace) at exit;
 *   --journal-out <path>    enable the flight recorder, write the
 *                           journal JSONL at exit;
 *   --profile-out <path>    enable the CPU profiling plane (sampling
 *                           profiler + per-span counters), write the
 *                           profile JSON (+ folded stacks) at exit.
 * Call as the first statement of main.
 */
void initHarness(int &argc, char **argv);

/**
 * Measured bundle for Apps 1-7 on the standard synthetic dataset;
 * computed on first call and cached on disk.
 */
const core::MeasuredBundle &measuredBundle();

/** The MeasuredApp of tier @p tier from the bundle. */
const core::MeasuredApp &appMeasurements(int tier);

/** Landsat-8 system profile using the bundle's measured prevalence. */
core::SystemProfile profileFor(hw::Target target);

/** The direct-deploy table of a measured app (accuracy-max tiling). */
const core::ContextActionTable &directTable(const core::MeasuredApp &app);

/** Direct-deploy outcome of a measured app on a profile. */
core::DeploymentOutcome directDeploy(const core::MeasuredApp &app,
                                     const core::SystemProfile &profile);

/** Kodan selection (full sweep) over a measured app's tables. */
core::SweepResult kodanSelect(const core::MeasuredApp &app,
                              const core::SystemProfile &profile,
                              const core::SweepOptions &options = {});

/** Print the standard bench banner. */
void banner(const std::string &title, const std::string &paper_ref);

/**
 * Mirror a result table to <KODAN_BENCH_CSV_DIR>/<name>.csv for
 * plotting; no-op when the environment variable is unset.
 */
void emitCsv(const std::string &name, const util::TablePrinter &table);

/**
 * Where a bench writes its BENCH_<name>.run.json record:
 * KODAN_BENCH_CSV_DIR when set, else the bench cache directory
 * (KODAN_BENCH_CACHE_DIR or the build tree) — never the directory the
 * bench happens to run in, so raw run records cannot litter a source
 * checkout.
 */
std::string runRecordPath(const std::string &name);

} // namespace kodan::bench

#endif // KODAN_BENCH_COMMON_HPP
