/**
 * @file
 * Figure 8: downlink data value density (DVD) of the bent pipe, direct
 * deployment, and Kodan for Apps 1-7 on each hardware target. The
 * headline result: Kodan improves DVD by ~89-97% over the bent pipe
 * across all applications and targets.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    using namespace kodan;
    bench::banner("Data value density: bent pipe / direct deploy / Kodan",
                  "Figure 8");

    double min_improvement = 1e9;
    double max_improvement = -1e9;
    for (hw::Target target : hw::allTargets()) {
        const auto profile = bench::profileFor(target);
        const auto bent = core::bentPipeOutcome(profile);
        std::cout << "Deployment to " << hw::targetName(target)
                  << " (frame deadline "
                  << util::TablePrinter::fmt(profile.frame_deadline, 1)
                  << " s)\n";
        util::TablePrinter table({"app", "bent pipe", "direct deploy",
                                  "Kodan", "Kodan vs bent %"});
        for (int tier = 1; tier <= hw::kAppCount; ++tier) {
            const auto &app = bench::appMeasurements(tier);
            const auto direct = bench::directDeploy(app, profile);
            const auto kodan = bench::kodanSelect(app, profile);
            const double improvement =
                100.0 * (kodan.outcome.dvd - bent.dvd) / bent.dvd;
            min_improvement = std::min(min_improvement, improvement);
            max_improvement = std::max(max_improvement, improvement);
            table.addRow({"App " + std::to_string(tier),
                          util::TablePrinter::fmt(bent.dvd),
                          util::TablePrinter::fmt(direct.dvd),
                          util::TablePrinter::fmt(kodan.outcome.dvd),
                          util::TablePrinter::fmt(improvement, 1)});
        }
        table.print(std::cout);
        bench::emitCsv(std::string("fig08_dvd_") +
                           hw::targetName(target),
                       table);
        std::cout << "\n";
    }
    std::cout << "Kodan DVD improvement over the bent pipe across all "
                 "apps/targets: "
              << util::TablePrinter::fmt(min_improvement, 1) << "% to "
              << util::TablePrinter::fmt(max_improvement, 1)
              << "% (paper: 89% to 97%).\n";
    return 0;
}
