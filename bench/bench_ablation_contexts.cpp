/**
 * @file
 * Ablation: context count.
 *
 * Section 3.3 calls the number of contexts a hyperparameter: one context
 * collapses Kodan to a single retrained network; too many contexts
 * starve each specialized model of training data. This bench fixes the
 * cluster count (disabling the automatic sweep) and measures the
 * resulting DVD and per-technique diagnostics for App 4 on the Orin.
 */

#include <future>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

struct Point
{
    int k;
    double silhouette;
    double engine_agreement;
    double dvd;
    double frame_time;
};

Point
runWithK(int k)
{
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    options.partition.k_candidates = {k};
    options.partition.metrics = {ml::Distance::Euclidean};
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const auto artifacts =
        transformer.transformApp(core::Application{4}, shared);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto result = transformer.select(artifacts, profile);
    return {k, shared.partition.silhouette, shared.engine_agreement,
            result.outcome.dvd, result.outcome.frame_time};
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("Ablation: number of contexts (App 4, Orin 15W)",
                  "the Section 3.3 hyperparameter discussion");

    const int ks[] = {1, 2, 3, 4, 6, 8};
    std::vector<std::future<Point>> futures;
    for (int k : ks) {
        futures.push_back(
            std::async(std::launch::async, runWithK, k));
    }
    util::TablePrinter table({"contexts", "silhouette",
                              "engine agreement", "DVD",
                              "frame time (s)"});
    for (auto &future : futures) {
        const Point p = future.get();
        table.addRow({util::TablePrinter::fmt(
                          static_cast<long long>(p.k)),
                      util::TablePrinter::fmt(p.silhouette),
                      util::TablePrinter::fmt(p.engine_agreement),
                      util::TablePrinter::fmt(p.dvd),
                      util::TablePrinter::fmt(p.frame_time, 1)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: DVD rises from the single-context\n"
                 "baseline as contexts enable elision and specialization,\n"
                 "then flattens (or dips) once per-context training data\n"
                 "gets scarce.\n";
    return 0;
}
