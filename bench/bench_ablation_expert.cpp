/**
 * @file
 * Ablation: expert versus automatically-generated contexts.
 *
 * Section 3.2 presents both strategies: an SME partitions the data into
 * human-recognizable terrain contexts, or k-means clusters the label
 * vectors. This bench runs the full pipeline both ways for App 4 on the
 * Orin and compares engine fidelity, precision, and end-to-end DVD.
 */

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace kodan;

struct Row
{
    const char *name;
    int contexts;
    double engine_agreement;
    double kodan_dvd;
    double frame_time;
};

Row
runWith(bool expert, const char *name)
{
    data::GeoModel world;
    core::TransformOptions options;
    options.train_frames = 60;
    options.val_frames = 24;
    options.expert_contexts = expert;
    core::Transformer transformer(options);
    const auto shared = transformer.prepareData(world);
    const auto artifacts =
        transformer.transformApp(core::Application{4}, shared);
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto result = transformer.select(artifacts, profile);
    return {name, shared.partition.context_count,
            shared.engine_agreement, result.outcome.dvd,
            result.outcome.frame_time};
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);
    bench::banner("Ablation: expert vs automatic contexts (App 4, "
                  "Orin 15W)",
                  "the Section 3.2 comparison");

    const Row automatic = runWith(false, "automatic (k-means sweep)");
    const Row expert = runWith(true, "expert (terrain classes)");

    util::TablePrinter table({"contexts", "count", "engine agreement",
                              "Kodan DVD", "frame time (s)"});
    for (const Row &row : {automatic, expert}) {
        table.addRow({row.name,
                      util::TablePrinter::fmt(
                          static_cast<long long>(row.contexts)),
                      util::TablePrinter::fmt(row.engine_agreement),
                      util::TablePrinter::fmt(row.kodan_dvd),
                      util::TablePrinter::fmt(row.frame_time, 1)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: both context strategies deliver\n"
                 "comparable end-to-end DVD; expert contexts are easier\n"
                 "for the engine to recognize (terrain is directly\n"
                 "observable) while automatic contexts also split by\n"
                 "cloudiness, which elision exploits.\n";
    return 0;
}
