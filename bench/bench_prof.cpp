/**
 * @file
 * bench_prof — CPU-profiling-plane guard: proves the profiler observes
 * without perturbing, and that sampling overhead stays bounded.
 *
 *   bench_prof [--verify] [--ceiling F] [--pessimize] [--gemm-reps N]
 *
 * Default mode runs the deterministic workload once — a small
 * constellation scenario (journal + metrics + time series recording)
 * followed by a dense GEMM burst — and exits. Combined with the
 * harness flags this is the flamegraph/diff capture target:
 *
 *   bench_prof --profile-out base.prof.json
 *   bench_prof --pessimize --profile-out pess.prof.json
 *   kodan-report profile diff base.prof.json pess.prof.json
 *
 * --pessimize swaps the ML kernel backend to the naive scalar matmul,
 * so the diff must rank `ml.kernels.gemm` as the top regressed span.
 *
 * --verify asserts the determinism contract (DESIGN.md "CPU profiling
 * plane"): at KODAN_THREADS 1, 4, and 16, the workload's journal
 * JSONL, time-series JSON, and canonical metrics snapshot (timers
 * reduced to call counts — their durations are wall clock by
 * definition) are byte-identical with profiling on vs off. It then
 * measures sampling overhead on the GEMM burst (best of 3, profiled vs
 * not) and fails when the ratio exceeds --ceiling (default 1.5 — the
 * 997 Hz sampler costs low single-digit percent; the headroom absorbs
 * shared-runner noise). Exit status: 0 on pass, 1 on any mismatch or
 * ceiling breach.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "sim/constellation.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace telemetry = kodan::telemetry;
namespace prof = kodan::telemetry::prof;
namespace sim = kodan::sim;
namespace ml = kodan::ml;

/** The constellation scenario: small enough to run six times in
 *  --verify, big enough to exercise sharded multi-threaded scheduling
 *  and emit a real journal/time-series stream. */
sim::ConstellationConfig
scenario()
{
    sim::ConstellationConfig config;
    config.mission = sim::MissionConfig::makeConstellation(10, 2, 1);
    config.mission.duration = 6.0 * 3600.0;
    config.mission.scheduler_step = 30.0;
    config.mission.contact_scan_step = 60.0;
    config.mission.telemetry_bin_s = 1800.0;
    config.mission.telemetry_prefix = "constellation";
    config.chunk_s = 3.0 * 3600.0;
    config.shard_size = 4;
    return config;
}

/** Dense square operands (no zeros, so the naive backend's zero-skip
 *  cannot dodge work and --pessimize regresses honestly). */
ml::Matrix
denseOperand(std::size_t n, std::uint64_t salt)
{
    ml::Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            m.at(i, j) =
                0.25 + 0.001 * static_cast<double>(
                                   (i * 37 + j * 11 + salt) % 97);
        }
    }
    return m;
}

/** The GEMM burst: @p reps dense multiplies through the backend
 *  dispatch in Matrix::multiply. Returns a value sink. */
double
gemmBurst(int reps)
{
    const std::size_t n = 256;
    const ml::Matrix a = denseOperand(n, 1);
    const ml::Matrix b = denseOperand(n, 2);
    double sink = 0.0;
    for (int r = 0; r < reps; ++r) {
        const ml::Matrix c = ml::Matrix::multiply(a, b);
        sink += c.at(0, 0) + c.at(n - 1, n - 1);
    }
    return sink;
}

/** Everything one instrumented workload run produces, captured for
 *  bitwise comparison. */
struct CapturedRun
{
    std::string journal;
    std::string series;
    std::string metrics; ///< canonical form (timers -> call counts)
    double sink = 0.0;
};

/** Canonicalize a metrics snapshot: every deterministic field, with
 *  timer durations (wall clock) reduced to their call counts. */
std::string
canonicalMetrics()
{
    std::ostringstream out;
    const telemetry::RegistrySnapshot snap =
        telemetry::registry().snapshot();
    for (const telemetry::MetricSample &m : snap.metrics) {
        out << m.name << " kind=" << static_cast<int>(m.kind)
            << " count=" << m.count;
        if (m.kind != telemetry::MetricSample::Kind::Timer) {
            out << " sum=" << m.sum << " max=" << m.max;
            for (std::size_t i = 0; i < m.buckets.size(); ++i) {
                out << " b" << i << "=" << m.buckets[i];
            }
        }
        out << "\n";
    }
    return out.str();
}

CapturedRun
runWorkload(int threads, int gemm_reps)
{
    telemetry::resetAll();
    prof::resetProfile();
    prof::resetSpanTable();
    kodan::util::setGlobalThreads(threads);

    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.2;
    CapturedRun run;
    engine.run(scenario(), filter);
    run.sink = gemmBurst(gemm_reps);

    kodan::util::setGlobalThreads(0);
    std::ostringstream journal_out;
    telemetry::writeJournalJsonl(telemetry::collectJournal(),
                                 telemetry::journalDroppedEvents(),
                                 journal_out);
    run.journal = journal_out.str();
    std::ostringstream series_out;
    telemetry::writeTimeSeriesJson(telemetry::timeSeriesSnapshot(),
                                   series_out);
    run.series = series_out.str();
    run.metrics = canonicalMetrics();
    return run;
}

/** First differing line of two captured byte streams, for diagnostics. */
void
reportMismatch(const std::string &what, const std::string &off,
               const std::string &on)
{
    std::cerr << "bench_prof: " << what
              << " bytes differ with profiling on (off " << off.size()
              << " B, on " << on.size() << " B)\n";
    std::istringstream a(off);
    std::istringstream b(on);
    std::string line_a;
    std::string line_b;
    std::size_t line_no = 1;
    while (true) {
        const bool more_a = static_cast<bool>(std::getline(a, line_a));
        const bool more_b = static_cast<bool>(std::getline(b, line_b));
        if (!more_a && !more_b) {
            break;
        }
        if (line_a != line_b || more_a != more_b) {
            std::cerr << "  first divergence at line " << line_no
                      << ":\n    off: " << (more_a ? line_a : "<eof>")
                      << "\n    on:  " << (more_b ? line_b : "<eof>")
                      << "\n";
            break;
        }
        ++line_no;
        line_a.clear();
        line_b.clear();
    }
}

int
verify(double ceiling, int gemm_reps)
{
    telemetry::setEnabled(true);
    telemetry::setJournalEnabled(true);
    bool ok = true;

    for (int threads : {1, 4, 16}) {
        prof::setProfilingEnabled(false);
        const CapturedRun off = runWorkload(threads, gemm_reps);
        prof::setProfilingEnabled(true);
        const CapturedRun on = runWorkload(threads, gemm_reps);
        prof::setProfilingEnabled(false);

        const prof::ProfileSnapshot snapshot = prof::snapshotProfile();
        const prof::SpanTableSnapshot spans = prof::spanTableSnapshot();
        std::cout << "threads=" << threads << ": journal "
                  << off.journal.size() << " B, series "
                  << off.series.size() << " B, metrics "
                  << off.metrics.size() << " B; profiled run took "
                  << snapshot.samples << " sample(s), "
                  << spans.rows.size() << " span row(s) ("
                  << spans.source << ")\n";
        if (off.sink != on.sink) {
            std::cerr << "bench_prof: GEMM result diverged with "
                         "profiling on (threads="
                      << threads << ")\n";
            ok = false;
        }
        if (off.journal != on.journal) {
            reportMismatch("journal", off.journal, on.journal);
            ok = false;
        }
        if (off.series != on.series) {
            reportMismatch("time series", off.series, on.series);
            ok = false;
        }
        if (off.metrics != on.metrics) {
            reportMismatch("metrics", off.metrics, on.metrics);
            ok = false;
        }
        // The guard must not pass vacuously: the profiled run has to
        // have actually profiled something.
        if (spans.rows.empty()) {
            std::cerr << "bench_prof: profiled run recorded no span "
                         "rows (threads="
                      << threads << ")\n";
            ok = false;
        }
        if (prof::samplerSupported() && snapshot.samples == 0) {
            std::cerr << "bench_prof: profiled run recorded no samples "
                         "(threads="
                      << threads << ")\n";
            ok = false;
        }
    }

    // Sampling overhead on the GEMM burst, best of 3 each way.
    telemetry::resetAll();
    const auto best_of_3 = [&](bool profiled) {
        prof::setProfilingEnabled(profiled);
        double best = 0.0;
        for (int r = 0; r < 3; ++r) {
            const auto start = std::chrono::steady_clock::now();
            gemmBurst(gemm_reps);
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (r == 0 || elapsed < best) {
                best = elapsed;
            }
        }
        prof::setProfilingEnabled(false);
        return best;
    };
    const double plain_s = best_of_3(false);
    const double profiled_s = best_of_3(true);
    const double ratio = plain_s > 0.0 ? profiled_s / plain_s : 1.0;
    std::cout << "overhead: plain " << plain_s << " s, profiled "
              << profiled_s << " s, ratio " << ratio << " (ceiling "
              << ceiling << ")\n";
    if (ratio > ceiling) {
        std::cerr << "bench_prof: sampling overhead " << ratio
                  << "x exceeds ceiling " << ceiling << "x\n";
        ok = false;
    }

    std::cout << (ok ? "VERIFY PASS: profiler perturbs nothing"
                     : "VERIFY FAIL")
              << "\n";
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);

    bool do_verify = false;
    bool pessimize = false;
    double ceiling = 1.5;
    int gemm_reps = 20;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--verify") {
            do_verify = true;
        } else if (arg == "--pessimize") {
            pessimize = true;
        } else if (arg == "--ceiling" && i + 1 < argc) {
            ceiling = std::strtod(argv[++i], nullptr);
        } else if (arg == "--gemm-reps" && i + 1 < argc) {
            gemm_reps = std::atoi(argv[++i]);
        } else {
            std::cerr << "usage: bench_prof [--verify] [--ceiling F] "
                         "[--pessimize] [--gemm-reps N]\n";
            return 2;
        }
    }
    if (pessimize) {
        ml::kernels::setBackend(ml::kernels::Backend::Naive);
        std::cout << "bench_prof: ML kernel backend pessimized to "
                     "naive scalar\n";
    }
    if (do_verify) {
        return verify(ceiling, gemm_reps);
    }

    // Capture mode: one instrumented pass, outputs via the harness
    // flags (--profile-out, --journal-out, --telemetry-out).
    const CapturedRun run =
        runWorkload(kodan::util::globalThreadCount(), gemm_reps);
    std::cout << "bench_prof: workload done (journal "
              << run.journal.size() << " B, sink " << run.sink << ")\n";
    return 0;
}
