/**
 * @file
 * Fleet health plane guard: determinism, alert accuracy, and overhead.
 *
 * Runs a small constellation with a synthetic degradation injected into
 * one satellite (its contact runs transfer zero bits from
 * --degrade-after-h on, so backlog grows until the storage cap sheds
 * it) and checks three contracts of the health plane:
 *
 *  1. **Determinism** (--verify): the alert JSONL produced by the
 *     degraded scenario is byte-identical at 1/4/16 threads.
 *  2. **Accuracy**: every satellite-kind alert names the degraded
 *     satellite, and both `storage.drop` and `downlink.absence` fire
 *     for it — the injected fault is detected, with no false positives
 *     on the healthy satellites.
 *  3. **Overhead** (--assert-overhead): the serial health fold meters
 *     itself via the `telemetry.self.health.fold_s` timer; its total
 *     must stay within the given fraction of the mission wall time.
 *
 * The measured (health-on) run executes last so the harness's
 * --alerts-out / --telemetry-out exit snapshots capture it; results go
 * to stdout and BENCH_health.run.json (in KODAN_BENCH_CSV_DIR when
 * set, else the bench cache directory).
 *
 * Flags (after the harness's --telemetry-out/--journal-out/--alerts-out):
 *   --sats N             total satellites                 (default 12)
 *   --planes P           orbital planes                   (default 3)
 *   --days D             simulated days                   (default 2)
 *   --shard-size S       satellites per work unit         (default 4)
 *   --chunk-hours H      streaming chunk length           (default 6)
 *   --bin-minutes M      telemetry bin width, minutes     (default 30)
 *   --storage-gbits G    on-board storage per sat, Gbit   (default 60)
 *   --degrade-sat K      satellite to degrade, -1 = none  (default 3)
 *   --degrade-after-h H  degradation onset, hours         (default 12)
 *   --assert-overhead F  exit 1 above fold/wall fraction  (default 0.03)
 *   --verify             byte-compare alerts at 1/4/16 threads
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/constellation.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace kodan;

double
timeSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Scenario
{
    int sats = 12;
    int planes = 3;
    double days = 2.0;
    std::size_t shard_size = 4;
    double chunk_hours = 6.0;
    double bin_minutes = 30.0;
    double storage_gbits = 60.0;
    long long degrade_sat = 3;
    double degrade_after_h = 12.0;
};

sim::ConstellationConfig
makeScenario(const Scenario &s)
{
    sim::ConstellationConfig config;
    config.mission = sim::MissionConfig::makeConstellation(
        s.sats, s.planes, 1);
    config.mission.duration = s.days * util::kSecondsPerDay;
    config.mission.scheduler_step = 30.0;
    config.mission.contact_scan_step = 60.0;
    config.mission.telemetry_bin_s = s.bin_minutes * 60.0;
    config.mission.telemetry_prefix = "health";
    config.shard_size = s.shard_size;
    config.chunk_s = s.chunk_hours * 3600.0;
    config.storage_bits = s.storage_gbits * 1e9;
    config.degrade.satellite = s.degrade_sat;
    config.degrade.after_s = s.degrade_after_h * 3600.0;
    return config;
}

/**
 * A provisioned Kodan-style filter: costly, selective, compact
 * products, raws discarded. Product volume (~63 Gbit/sat/day) sits
 * well inside the fleet's contact capacity, so a healthy satellite
 * drains fully every pass and fires nothing — the degraded one is the
 * only offender.
 */
sim::FilterBehavior
kodanFilter()
{
    sim::FilterBehavior filter;
    filter.frame_time = 200.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.05;
    filter.product_fraction = 0.1;
    filter.send_unprocessed = false;
    return filter;
}

/** Run the scenario on a fresh plane and render its alert JSONL. */
std::string
alertBytes(const sim::ConstellationConfig &config)
{
    telemetry::health::plane().reset();
    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);
    engine.run(config, kodanFilter());
    const auto snapshot = telemetry::health::plane().snapshot();
    std::ostringstream oss;
    telemetry::health::writeAlertsJsonl(snapshot.alerts, oss);
    return oss.str();
}

/**
 * Check the reference run's alerts against the injected fault: every
 * satellite alert belongs to the degraded satellite and both expected
 * rules fired for it.
 */
bool
checkExpectedAlerts(const std::vector<telemetry::health::Alert> &alerts,
                    long long degrade_sat)
{
    using telemetry::health::EntityKind;
    bool ok = true;
    bool storage_drop = false;
    bool downlink_absence = false;
    for (const auto &alert : alerts) {
        if (alert.entity_kind != EntityKind::Satellite) {
            continue;
        }
        if (alert.entity != degrade_sat) {
            std::cerr << "[kodan-bench] FALSE POSITIVE: rule "
                      << alert.rule << " fired for healthy satellite "
                      << alert.entity << "\n";
            ok = false;
        }
        if (alert.rule == "storage.drop") {
            storage_drop = true;
        } else if (alert.rule == "downlink.absence") {
            downlink_absence = true;
        }
        if (alert.evidence.empty()) {
            std::cerr << "[kodan-bench] MISSING EVIDENCE: rule "
                      << alert.rule << " carries no observations\n";
            ok = false;
        }
    }
    if (!storage_drop) {
        std::cerr << "[kodan-bench] MISSED DETECTION: storage.drop did "
                     "not fire for the degraded satellite\n";
        ok = false;
    }
    if (!downlink_absence) {
        std::cerr << "[kodan-bench] MISSED DETECTION: downlink.absence "
                     "did not fire for the degraded satellite\n";
        ok = false;
    }
    return ok;
}

/**
 * Byte-compare the degraded scenario's alert JSONL across thread
 * counts, with recording off so only the plane is exercised.
 */
bool
verifyDeterminism(const sim::ConstellationConfig &config,
                  long long degrade_sat)
{
    const bool metrics_on = telemetry::enabled();
    const bool journal_on = telemetry::journalEnabled();
    telemetry::setEnabled(false);
    telemetry::setJournalEnabled(false);
    telemetry::health::setHealthEnabled(true);

    bool ok = true;
    std::string reference;
    for (const int threads : {1, 4, 16}) {
        util::setGlobalThreads(threads);
        const std::string bytes = alertBytes(config);
        util::setGlobalThreads(0);
        if (threads == 1) {
            reference = bytes;
            const auto snapshot = telemetry::health::plane().snapshot();
            if (!checkExpectedAlerts(snapshot.alerts, degrade_sat)) {
                ok = false;
                break;
            }
            std::cout << "expected alerts: OK (" << snapshot.alerts.size()
                      << " alert(s), all on satellite " << degrade_sat
                      << ")\n";
            continue;
        }
        if (bytes != reference) {
            std::size_t at = 0;
            while (at < bytes.size() && at < reference.size() &&
                   bytes[at] == reference[at]) {
                ++at;
            }
            std::cerr << "[kodan-bench] DETERMINISM VIOLATION: alert "
                         "JSONL diverged at "
                      << threads << " threads (byte " << at << ")\n";
            ok = false;
            break;
        }
    }
    telemetry::health::plane().reset();
    telemetry::setEnabled(metrics_on);
    telemetry::setJournalEnabled(journal_on);
    if (ok) {
        std::cout << "alert determinism: OK (1/4/16 threads "
                     "byte-identical JSONL)\n";
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    kodan::bench::initHarness(argc, argv);

    Scenario s;
    double assert_overhead = 0.03;
    bool verify = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--sats") {
            s.sats = std::stoi(next());
        } else if (arg == "--planes") {
            s.planes = std::stoi(next());
        } else if (arg == "--days") {
            s.days = std::stod(next());
        } else if (arg == "--shard-size") {
            s.shard_size = static_cast<std::size_t>(std::stoul(next()));
        } else if (arg == "--chunk-hours") {
            s.chunk_hours = std::stod(next());
        } else if (arg == "--bin-minutes") {
            s.bin_minutes = std::stod(next());
        } else if (arg == "--storage-gbits") {
            s.storage_gbits = std::stod(next());
        } else if (arg == "--degrade-sat") {
            s.degrade_sat = std::stoll(next());
        } else if (arg == "--degrade-after-h") {
            s.degrade_after_h = std::stod(next());
        } else if (arg == "--assert-overhead") {
            assert_overhead = std::stod(next());
        } else if (arg == "--verify") {
            verify = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    bench::banner("Fleet health plane: determinism, accuracy, overhead",
                  "observability guard; no paper figure");

    const auto config = makeScenario(s);
    if (verify && !verifyDeterminism(config, s.degrade_sat)) {
        return 1;
    }

    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);

    // Baseline: health plane off — the engine skips the fold entirely.
    telemetry::health::setHealthEnabled(false);
    sim::MissionResult result;
    const double wall_off = timeSeconds(
        [&] { result = engine.run(config, kodanFilter()); });

    // Measured runs last, with the plane armed and metrics on so the
    // fold's self-timer records: the harness exit hooks then snapshot
    // exactly the final run's alerts and metrics. The overhead verdict
    // takes the best of three repetitions — the fold is deterministic
    // work, so its *minimum* cost is the real cost and the occasional
    // scheduler hiccup that inflates one repetition is not a
    // regression.
    constexpr int kOverheadReps = 3;
    double wall_on = 0.0;
    double fold_s = 0.0;
    double overhead = 0.0;
    double overhead_best = 0.0;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
        telemetry::resetAll();
        telemetry::setEnabled(true);
        telemetry::health::setHealthEnabled(true);
        wall_on = timeSeconds(
            [&] { result = engine.run(config, kodanFilter()); });
        const auto metrics = telemetry::registry().snapshot();
        const auto *fold = metrics.find("telemetry.self.health.fold_s");
        fold_s = fold != nullptr ? fold->sum : 0.0;
        overhead = wall_on > 0.0 ? fold_s / wall_on : 0.0;
        overhead_best = rep == 0 ? overhead
                                 : std::min(overhead_best, overhead);
    }
    const auto snapshot = telemetry::health::plane().snapshot();
    const auto totals = result.totals();

    util::TablePrinter table({"metric", "value"});
    table.addRow({"satellites", util::TablePrinter::fmt(
                                    static_cast<long long>(s.sats))});
    table.addRow({"simulated days", util::TablePrinter::fmt(s.days, 1)});
    table.addRow({"degraded satellite",
                  util::TablePrinter::fmt(
                      static_cast<long long>(s.degrade_sat))});
    table.addRow({"frames observed",
                  util::TablePrinter::fmt(static_cast<long long>(
                      totals.frames_observed))});
    table.addRow({"health observations",
                  util::TablePrinter::fmt(
                      static_cast<long long>(snapshot.observations))});
    table.addRow({"entities tracked",
                  util::TablePrinter::fmt(
                      static_cast<long long>(snapshot.entities))});
    table.addRow({"alerts fired",
                  util::TablePrinter::fmt(
                      static_cast<long long>(snapshot.alerts_fired))});
    table.addRow({"alerts firing",
                  util::TablePrinter::fmt(
                      static_cast<long long>(snapshot.alerts_firing))});
    table.addRow({"wall seconds (health off)",
                  util::TablePrinter::fmt(wall_off, 3)});
    table.addRow({"wall seconds (health on)",
                  util::TablePrinter::fmt(wall_on, 3)});
    table.addRow({"health fold seconds",
                  util::TablePrinter::fmt(fold_s, 4)});
    table.addRow({"fold / wall fraction",
                  util::TablePrinter::fmt(overhead, 4)});
    table.addRow({"fold / wall best-of-" + std::to_string(kOverheadReps),
                  util::TablePrinter::fmt(overhead_best, 4)});
    table.print(std::cout);
    bench::emitCsv("bench_health", table);

    const std::string path = bench::runRecordPath("health");
    std::ofstream json(path);
    if (json) {
        json << "{\n  \"satellites\": " << s.sats
             << ",\n  \"days\": " << s.days
             << ",\n  \"degraded_satellite\": " << s.degrade_sat
             << ",\n  \"health_observations\": " << snapshot.observations
             << ",\n  \"alerts_fired\": " << snapshot.alerts_fired
             << ",\n  \"alerts_firing\": " << snapshot.alerts_firing
             << ",\n  \"wall_seconds_off\": " << wall_off
             << ",\n  \"wall_seconds_on\": " << wall_on
             << ",\n  \"fold_seconds\": " << fold_s
             << ",\n  \"fold_wall_fraction\": " << overhead
             << ",\n  \"fold_wall_fraction_best\": " << overhead_best
             << "\n}\n";
    }

    if (assert_overhead > 0.0 && overhead_best > assert_overhead) {
        std::cerr << "[kodan-bench] OVERHEAD REGRESSION: health fold "
                     "consumed "
                  << overhead_best
                  << " of the mission wall time (budget "
                  << assert_overhead << ")\n";
        return 1;
    }
    return 0;
}
