#!/usr/bin/env bash
# Telemetry regression smoke: run bench_parallel_speedup,
# bench_fig02_downlink_gap, and the bench_fig10 mission sweep with the
# metrics snapshot + flight recorder + time series enabled, then feed
# the outputs to `kodan-report diff` against the committed baselines in
# bench/baselines/. Non-zero exit on regression.
#
# Usage:
#   scripts/check_regressions.sh [--build-dir DIR] [--rebaseline]
#
# --rebaseline regenerates bench/baselines/ from the current build and
# appends an entry (labeled with the current git commit) to the
# BENCH_parallel_speedup.json trajectory at the repo root, instead of
# diffing.
#
# Baseline caveat: the committed baselines are toolchain-pinned. Counters,
# gauges, journals, and time series are bit-deterministic for a given
# toolchain (gauge sums accumulate in 128-bit fixed point, so the bytes
# do not depend on thread count or merge order), but libm transcendentals
# may differ across platforms and shift readings. The diff therefore
# guards *behavior* (counters, gauges, journal event streams, sim-time
# series) bit-exactly, while timers get a huge tolerance (they measure
# this machine, not the baseline machine). After a legitimate behavior or
# toolchain change, rerun with --rebaseline and commit the result.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${KODAN_BUILD_DIR:-$REPO_ROOT/build}"
REBASELINE=0

while [[ $# -gt 0 ]]; do
    case "$1" in
      --build-dir)
        BUILD_DIR="$2"
        shift 2
        ;;
      --rebaseline)
        REBASELINE=1
        shift
        ;;
      *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
done

BASELINES="$REPO_ROOT/bench/baselines"
REPORT="$BUILD_DIR/tools/kodan-report"
SPEEDUP_BENCH="$BUILD_DIR/bench/bench_parallel_speedup"
FIG02_BENCH="$BUILD_DIR/bench/bench_fig02_downlink_gap"
FIG10_BENCH="$BUILD_DIR/bench/bench_fig10_dvd_vs_time"

for binary in "$REPORT" "$SPEEDUP_BENCH" "$FIG02_BENCH" "$FIG10_BENCH"; do
    if [[ ! -x "$binary" ]]; then
        echo "missing binary: $binary (build the repo first)" >&2
        exit 2
    fi
done

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "[check_regressions] running bench_fig02_downlink_gap ..."
(cd "$WORKDIR" && "$FIG02_BENCH" \
    --telemetry-out "$WORKDIR/fig02_downlink_gap.metrics.json" \
    --journal-out "$WORKDIR/fig02_downlink_gap.journal.jsonl" \
    > /dev/null)

echo "[check_regressions] running bench_parallel_speedup ..."
(cd "$WORKDIR" && "$SPEEDUP_BENCH" \
    --telemetry-out "$WORKDIR/parallel_speedup.metrics.json" \
    > /dev/null)

echo "[check_regressions] running bench_fig10 mission sweep ..."
(cd "$WORKDIR" && "$FIG10_BENCH" --mission-only \
    --telemetry-out "$WORKDIR/fig10_mission.metrics.json" \
    > /dev/null)

if [[ "$REBASELINE" -eq 1 ]]; then
    mkdir -p "$BASELINES"
    cp "$WORKDIR/fig02_downlink_gap.metrics.json" \
       "$WORKDIR/fig02_downlink_gap.journal.jsonl" \
       "$WORKDIR/parallel_speedup.metrics.json" \
       "$WORKDIR/fig10_mission.metrics.json" \
       "$WORKDIR/fig10_mission.metrics.timeseries.json" \
       "$BASELINES/"
    LABEL="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null ||
             echo local)"
    "$REPORT" aggregate --name parallel_speedup --label "$LABEL" \
        --out "$REPO_ROOT/BENCH_parallel_speedup.json" \
        "$WORKDIR/parallel_speedup.metrics.json"
    echo "[check_regressions] baselines rebaselined in $BASELINES"
    exit 0
fi

STATUS=0

# Timers measure this machine, not the baseline machine: tolerate 100x.
# Everything else — counters, gauges, the journal event stream, and the
# sim-time series — is bit-deterministic (gauge and histogram sums
# accumulate in 128-bit fixed point), so values diff exactly.
echo "[check_regressions] diffing fig02_downlink_gap against baseline ..."
"$REPORT" diff \
    "$BASELINES/fig02_downlink_gap.metrics.json" \
    "$WORKDIR/fig02_downlink_gap.metrics.json" \
    --journal \
    "$BASELINES/fig02_downlink_gap.journal.jsonl" \
    "$WORKDIR/fig02_downlink_gap.journal.jsonl" \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing parallel_speedup against baseline ..."
"$REPORT" diff \
    "$BASELINES/parallel_speedup.metrics.json" \
    "$WORKDIR/parallel_speedup.metrics.json" \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing fig10 mission series against baseline ..."
"$REPORT" diff \
    "$BASELINES/fig10_mission.metrics.json" \
    "$WORKDIR/fig10_mission.metrics.json" \
    --timeseries \
    "$BASELINES/fig10_mission.metrics.timeseries.json" \
    "$WORKDIR/fig10_mission.metrics.timeseries.json" \
    --tol-timer 100 || STATUS=1

if [[ "$STATUS" -ne 0 ]]; then
    echo "[check_regressions] REGRESSION detected (see report above);" \
         "if intended, rerun with --rebaseline and commit." >&2
else
    echo "[check_regressions] no regressions against committed baselines."
fi
exit "$STATUS"
