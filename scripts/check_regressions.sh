#!/usr/bin/env bash
# Telemetry regression smoke: run bench_parallel_speedup,
# bench_fig02_downlink_gap, the bench_fig10 mission sweep,
# bench_ml_kernels, bench_dataplane, the bench_constellation smoke
# + golden long-horizon fixture (100 satellites x 30 days), and the
# bench_health degraded-fleet guard with the metrics snapshot + flight
# recorder + time series enabled, then feed the outputs to
# `kodan-report diff` (and `kodan-report health` for the alert JSONL)
# against the committed baselines in bench/baselines/. Non-zero exit on
# regression (including any ML-kernel Blocked-vs-Naive bit mismatch, a
# constellation-engine thread-divergence under --verify, a miss of the
# constellation throughput floor under --assert-throughput, a
# staged-vs-batch report mismatch or steady-state heap allocation in
# bench_dataplane, and any health-plane alert divergence, missed
# detection, or overhead-budget breach, all of which fail the bench
# itself). bench_prof --verify guards the CPU profiling plane's
# determinism contract (byte-identical journal/series/metrics with
# profiling on vs off at 1/4/16 threads) and its overhead ceiling, and
# the bench_dataplane run also captures a profile whose span table —
# exact call counts per instrumented span — is diffed against
# bench/baselines/prof.spans.json (span costs get a huge tolerance;
# they measure this machine).
#
# Usage:
#   scripts/check_regressions.sh [--build-dir DIR] [--rebaseline]
#
# --rebaseline regenerates bench/baselines/ from the current build and
# appends an entry (labeled with the current git commit) to the
# BENCH_parallel_speedup.json, BENCH_ml_kernels.json,
# BENCH_dataplane.json, BENCH_constellation.json, and BENCH_health.json
# trajectories at the repo root, instead of diffing.
#
# Baseline caveat: the committed baselines are toolchain-pinned. Counters,
# gauges, journals, and time series are bit-deterministic for a given
# toolchain (gauge sums accumulate in 128-bit fixed point, so the bytes
# do not depend on thread count or merge order), but libm transcendentals
# may differ across platforms and shift readings. The diff therefore
# guards *behavior* (counters, gauges, journal event streams, sim-time
# series) bit-exactly, while timers get a huge tolerance (they measure
# this machine, not the baseline machine). After a legitimate behavior or
# toolchain change, rerun with --rebaseline and commit the result.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${KODAN_BUILD_DIR:-$REPO_ROOT/build}"
REBASELINE=0

while [[ $# -gt 0 ]]; do
    case "$1" in
      --build-dir)
        BUILD_DIR="$2"
        shift 2
        ;;
      --rebaseline)
        REBASELINE=1
        shift
        ;;
      *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
done

BASELINES="$REPO_ROOT/bench/baselines"
REPORT="$BUILD_DIR/tools/kodan-report"
SPEEDUP_BENCH="$BUILD_DIR/bench/bench_parallel_speedup"
FIG02_BENCH="$BUILD_DIR/bench/bench_fig02_downlink_gap"
FIG10_BENCH="$BUILD_DIR/bench/bench_fig10_dvd_vs_time"
MLKERN_BENCH="$BUILD_DIR/bench/bench_ml_kernels"
DATAPLANE_BENCH="$BUILD_DIR/bench/bench_dataplane"
CONSTEL_BENCH="$BUILD_DIR/bench/bench_constellation"
HEALTH_BENCH="$BUILD_DIR/bench/bench_health"
PROF_BENCH="$BUILD_DIR/bench/bench_prof"

for binary in "$REPORT" "$SPEEDUP_BENCH" "$FIG02_BENCH" "$FIG10_BENCH" \
              "$MLKERN_BENCH" "$DATAPLANE_BENCH" "$CONSTEL_BENCH" \
              "$HEALTH_BENCH" "$PROF_BENCH"; do
    if [[ ! -x "$binary" ]]; then
        echo "missing binary: $binary (build the repo first)" >&2
        exit 2
    fi
done

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "[check_regressions] running bench_fig02_downlink_gap ..."
(cd "$WORKDIR" && "$FIG02_BENCH" \
    --telemetry-out "$WORKDIR/fig02_downlink_gap.metrics.json" \
    --journal-out "$WORKDIR/fig02_downlink_gap.journal.jsonl" \
    > /dev/null)

echo "[check_regressions] running bench_parallel_speedup ..."
(cd "$WORKDIR" && "$SPEEDUP_BENCH" \
    --telemetry-out "$WORKDIR/parallel_speedup.metrics.json" \
    > /dev/null)

echo "[check_regressions] running bench_fig10 mission sweep ..."
(cd "$WORKDIR" && "$FIG10_BENCH" --mission-only \
    --telemetry-out "$WORKDIR/fig10_mission.metrics.json" \
    > /dev/null)

# bench_ml_kernels exits non-zero on any Blocked-vs-Naive bit mismatch,
# so this run is the kernel-correctness smoke as well as the perf probe;
# no --assert-speedup here because the diff's timers already tolerate
# machine noise (floors are asserted when the trajectory is recorded).
echo "[check_regressions] running bench_ml_kernels ..."
(cd "$WORKDIR" && "$MLKERN_BENCH" \
    --telemetry-out "$WORKDIR/ml_kernels.metrics.json" \
    > /dev/null)

# bench_dataplane exits non-zero if any staged configuration's report
# diverges from the batch path (bit-identity) or the steady-state
# allocation guard counts a heap allocation, so this run is the data
# plane's correctness smoke as well as the perf probe; no
# --assert-speedup here for the same reason as ml_kernels above.
# --profile-out arms the CPU profiling plane for this run; its span
# table (exact per-span call counts) is diffed against the committed
# prof.spans.json below. Safe inside the bench's steady-state
# allocation guard: span sites register (and allocate) on first hit,
# during warmup. The run goes through the int8 inference path
# (KODAN_QUANT=int8) so the committed span table covers
# ml.kernels.gemm_i8 and the staged-vs-batch bit-identity check
# exercises the quantized kernels; the int8 path is likewise
# allocation-free at steady state (scratch-arena workspaces, weights
# packed at construction).
echo "[check_regressions] running bench_dataplane (KODAN_QUANT=int8) ..."
(cd "$WORKDIR" && KODAN_QUANT=int8 "$DATAPLANE_BENCH" \
    --telemetry-out "$WORKDIR/dataplane.metrics.json" \
    --profile-out "$WORKDIR/dataplane.prof.json" \
    > /dev/null)

# Constellation engine smoke: small scenario with the full recording
# stack (metrics + journal + time series) for the bit-exact baseline
# diff, plus --verify (reruns a scaled scenario at 1/4/16 threads and
# fails on any bit divergence).
echo "[check_regressions] running bench_constellation smoke ..."
(cd "$WORKDIR" && "$CONSTEL_BENCH" \
    --sats 8 --days 1 --planes 4 --stations landsat --scan-step 60 \
    --verify \
    --telemetry-out "$WORKDIR/constellation.metrics.json" \
    --journal-out "$WORKDIR/constellation.journal.jsonl" \
    > /dev/null)

# Golden long-horizon fixture: 100 satellites over 30 simulated days
# (the memory-flat streaming path: 30 one-day chunks). The committed
# per-bin series pin the mission-scale totals — frames, downlinked
# bits, DVD, contact utilization — against drift; the throughput floor
# guards the engine's sat-days-per-second rate at mission scale.
echo "[check_regressions] running bench_constellation golden (100 sats x 30 days) ..."
(cd "$WORKDIR" && "$CONSTEL_BENCH" \
    --sats 100 --days 30 --planes 5 --stations landsat --bin-hours 6 \
    --assert-throughput 150 \
    --telemetry-out "$WORKDIR/constellation_golden.metrics.json" \
    > /dev/null)

# Fleet health plane guard: --verify byte-compares the degraded
# scenario's alert JSONL at 1/4/16 threads, checks the injected fault
# fires exactly the expected alerts, and asserts the health fold's
# self-timed overhead budget — any of which fails the bench itself.
# The exported alerts are then diffed bit-exactly against the committed
# baseline below.
echo "[check_regressions] running bench_health ..."
(cd "$WORKDIR" && "$HEALTH_BENCH" --verify \
    --telemetry-out "$WORKDIR/health.metrics.json" \
    --alerts-out "$WORKDIR/health.alerts.jsonl" \
    > /dev/null)

# CPU profiling plane guard: byte-identical journal/series/metrics with
# profiling on vs off at 1/4/16 threads, plus the sampling overhead
# ceiling — bench_prof exits non-zero on any violation.
echo "[check_regressions] running bench_prof --verify ..."
(cd "$WORKDIR" && "$PROF_BENCH" --verify > /dev/null)

if [[ "$REBASELINE" -eq 1 ]]; then
    mkdir -p "$BASELINES"
    cp "$WORKDIR/fig02_downlink_gap.metrics.json" \
       "$WORKDIR/fig02_downlink_gap.journal.jsonl" \
       "$WORKDIR/parallel_speedup.metrics.json" \
       "$WORKDIR/fig10_mission.metrics.json" \
       "$WORKDIR/fig10_mission.metrics.timeseries.json" \
       "$WORKDIR/ml_kernels.metrics.json" \
       "$WORKDIR/dataplane.metrics.json" \
       "$WORKDIR/constellation.metrics.json" \
       "$WORKDIR/constellation.metrics.timeseries.json" \
       "$WORKDIR/constellation.journal.jsonl" \
       "$WORKDIR/constellation_golden.metrics.json" \
       "$WORKDIR/constellation_golden.metrics.timeseries.json" \
       "$WORKDIR/health.metrics.json" \
       "$WORKDIR/health.metrics.timeseries.json" \
       "$WORKDIR/health.alerts.jsonl" \
       "$BASELINES/"
    # Despite the name, this is a full profile document; only its span
    # table is asserted by the diff below (frames are machine-shaped).
    cp "$WORKDIR/dataplane.prof.json" "$BASELINES/prof.spans.json"
    LABEL="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null ||
             echo local)"
    "$REPORT" aggregate --name parallel_speedup --label "$LABEL" \
        --out "$REPO_ROOT/BENCH_parallel_speedup.json" \
        "$WORKDIR/parallel_speedup.metrics.json"
    "$REPORT" aggregate --name ml_kernels --label "$LABEL" \
        --out "$REPO_ROOT/BENCH_ml_kernels.json" \
        "$WORKDIR/ml_kernels.metrics.json"
    "$REPORT" aggregate --name dataplane --label "$LABEL" \
        --out "$REPO_ROOT/BENCH_dataplane.json" \
        "$WORKDIR/dataplane.metrics.json"
    "$REPORT" aggregate --name constellation --label "$LABEL" \
        --out "$REPO_ROOT/BENCH_constellation.json" \
        "$WORKDIR/constellation_golden.metrics.json"
    "$REPORT" aggregate --name health --label "$LABEL" \
        --out "$REPO_ROOT/BENCH_health.json" \
        "$WORKDIR/health.metrics.json"
    echo "[check_regressions] baselines rebaselined in $BASELINES"
    exit 0
fi

STATUS=0

# Timers measure this machine, not the baseline machine: tolerate 100x.
# Everything else — counters, gauges, the journal event stream, and the
# sim-time series — is bit-deterministic (gauge and histogram sums
# accumulate in 128-bit fixed point), so values diff exactly.
echo "[check_regressions] diffing fig02_downlink_gap against baseline ..."
"$REPORT" diff \
    "$BASELINES/fig02_downlink_gap.metrics.json" \
    "$WORKDIR/fig02_downlink_gap.metrics.json" \
    --journal \
    "$BASELINES/fig02_downlink_gap.journal.jsonl" \
    "$WORKDIR/fig02_downlink_gap.journal.jsonl" \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing parallel_speedup against baseline ..."
"$REPORT" diff \
    "$BASELINES/parallel_speedup.metrics.json" \
    "$WORKDIR/parallel_speedup.metrics.json" \
    --tol-timer 100 || STATUS=1

# Ratio gauges (speedup, GFLOP/s) measure this machine and vary with
# load, so they are recorded in the trajectory but not diffed; the
# deterministic counters/histograms and the bench's own bit-identity
# exit code are the correctness guard.
echo "[check_regressions] diffing ml_kernels against baseline ..."
"$REPORT" diff \
    "$BASELINES/ml_kernels.metrics.json" \
    "$WORKDIR/ml_kernels.metrics.json" \
    --ignore bench.ml_kernels.ratio \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing dataplane against baseline ..."
"$REPORT" diff \
    "$BASELINES/dataplane.metrics.json" \
    "$WORKDIR/dataplane.metrics.json" \
    --ignore bench.dataplane.ratio \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing fig10 mission series against baseline ..."
"$REPORT" diff \
    "$BASELINES/fig10_mission.metrics.json" \
    "$WORKDIR/fig10_mission.metrics.json" \
    --timeseries \
    "$BASELINES/fig10_mission.metrics.timeseries.json" \
    "$WORKDIR/fig10_mission.metrics.timeseries.json" \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing constellation smoke against baseline ..."
"$REPORT" diff \
    "$BASELINES/constellation.metrics.json" \
    "$WORKDIR/constellation.metrics.json" \
    --journal \
    "$BASELINES/constellation.journal.jsonl" \
    "$WORKDIR/constellation.journal.jsonl" \
    --timeseries \
    "$BASELINES/constellation.metrics.timeseries.json" \
    "$WORKDIR/constellation.metrics.timeseries.json" \
    --tol-timer 100 || STATUS=1

echo "[check_regressions] diffing constellation golden against baseline ..."
"$REPORT" diff \
    "$BASELINES/constellation_golden.metrics.json" \
    "$WORKDIR/constellation_golden.metrics.json" \
    --timeseries \
    "$BASELINES/constellation_golden.metrics.timeseries.json" \
    "$WORKDIR/constellation_golden.metrics.timeseries.json" \
    --tol-timer 100 || STATUS=1

# Span call counts are deterministic and diff exactly (--tol-calls 0
# default); span costs measure this machine, so like the timers above
# they tolerate 100x. --assert turns any finding into a non-zero exit.
echo "[check_regressions] diffing dataplane profile spans against baseline ..."
"$REPORT" profile diff \
    "$BASELINES/prof.spans.json" \
    "$WORKDIR/dataplane.prof.json" \
    --assert --tol-cost 100 > /dev/null || STATUS=1

echo "[check_regressions] diffing health metrics + alerts against baseline ..."
"$REPORT" diff \
    "$BASELINES/health.metrics.json" \
    "$WORKDIR/health.metrics.json" \
    --timeseries \
    "$BASELINES/health.metrics.timeseries.json" \
    "$WORKDIR/health.metrics.timeseries.json" \
    --tol-timer 100 || STATUS=1
"$REPORT" health "$WORKDIR/health.alerts.jsonl" \
    --baseline "$BASELINES/health.alerts.jsonl" > /dev/null || STATUS=1

if [[ "$STATUS" -ne 0 ]]; then
    echo "[check_regressions] REGRESSION detected (see report above);" \
         "if intended, rerun with --rebaseline and commit." >&2
else
    echo "[check_regressions] no regressions against committed baselines."
fi
exit "$STATUS"
