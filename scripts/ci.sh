#!/usr/bin/env bash
# Full CI sweep: tier-1 build + complete ctest run, then the
# concurrency/observability-labeled suites again under ThreadSanitizer
# and AddressSanitizer builds. Mirrors what the regression driver runs,
# so a green ci.sh locally means the PR gates should pass.
#
# Usage:
#   scripts/ci.sh [--jobs N] [--skip-sanitizers]
#
# Build trees:
#   build/           default flags (tier-1)
#   build-tsan/      -DKODAN_SANITIZE=thread   (bench/examples off)
#   build-asan/      -DKODAN_SANITIZE=address  (bench/examples off)
#   build-native/    -DKODAN_NATIVE=ON         (mlkernels suite only)
#
# The sanitizer passes rerun only the labeled suites — determinism,
# telemetry, journal, report, time-series, and data-plane tests —
# because those are the ones that exercise cross-thread merges, the
# lock-free stage rings, and the recorder hot paths.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_SANITIZERS=0

while [[ $# -gt 0 ]]; do
    case "$1" in
      --jobs)
        JOBS="$2"
        shift 2
        ;;
      --skip-sanitizers)
        SKIP_SANITIZERS=1
        shift
        ;;
      *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
done

# ctest ANDs repeated -L flags, so the label filter must be one regex.
LABELS='parallel|telemetry|journal|report|timeseries|mlkernels|constellation|dataplane|health|prof'

echo "[ci] tier-1: configure + build + full ctest (jobs=$JOBS)"
cmake -B "$REPO_ROOT/build" -S "$REPO_ROOT"
cmake --build "$REPO_ROOT/build" -j "$JOBS"
(cd "$REPO_ROOT/build" && ctest --output-on-failure -j "$JOBS")

if [[ "$SKIP_SANITIZERS" -eq 1 ]]; then
    echo "[ci] sanitizers skipped (--skip-sanitizers)"
    echo "[ci] OK"
    exit 0
fi

# Suites whose dispatch changes under the int8 precision knob: the
# kernel equivalence grid itself plus the runtime/data-plane paths that
# route inference through the quantized siblings. Rerun under
# KODAN_QUANT=int8 so the integer kernels' concurrency (scratch arenas,
# packed-weight sharing, staged rings) gets the same sanitizer coverage
# as the fp64 path.
QUANT_LABELS='mlkernels|dataplane|parallel'

sanitized_pass() {
    local kind="$1" dir="$2"
    echo "[ci] ${kind}-sanitizer: configure + build + labeled ctest"
    cmake -B "$dir" -S "$REPO_ROOT" \
        -DKODAN_SANITIZE="$kind" \
        -DKODAN_BUILD_BENCH=OFF \
        -DKODAN_BUILD_EXAMPLES=OFF
    cmake --build "$dir" -j "$JOBS"
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L "$LABELS")
    echo "[ci] ${kind}-sanitizer: quant grid (KODAN_QUANT=int8)"
    (cd "$dir" && KODAN_QUANT=int8 ctest --output-on-failure -j "$JOBS" \
        -L "$QUANT_LABELS")
}

sanitized_pass thread "$REPO_ROOT/build-tsan"
sanitized_pass address "$REPO_ROOT/build-asan"

# One -march=native kernel build: proves the ML kernel layer's
# bit-identity contract holds with the host's full vector width
# (-ffp-contract=off pins rounding; see DESIGN.md "ML kernel layer").
echo "[ci] KODAN_NATIVE: configure + build + mlkernels ctest"
cmake -B "$REPO_ROOT/build-native" -S "$REPO_ROOT" \
    -DKODAN_NATIVE=ON \
    -DKODAN_BUILD_EXAMPLES=OFF
cmake --build "$REPO_ROOT/build-native" -j "$JOBS"
(cd "$REPO_ROOT/build-native" && ctest --output-on-failure -j "$JOBS" \
    -L mlkernels)
(cd "$REPO_ROOT/build-native" && KODAN_QUANT=int8 ctest \
    --output-on-failure -j "$JOBS" -L mlkernels)

# The int8 speedup floors are pinned to this native config (see
# EXPERIMENTS.md "Int8 quantized inference"): assert them here, where
# the SIMD requantizing epilogue is compiled at the host's full vector
# width. The bench also byte-compares every Blocked result against the
# Naive oracle, so this run doubles as the native bit-identity smoke.
echo "[ci] KODAN_NATIVE: bench_ml_kernels --assert-speedup"
(cd "$REPO_ROOT/build-native" && ./bench/bench_ml_kernels \
    --assert-speedup > /dev/null)

echo "[ci] OK — tier-1, TSan, ASan, and native-kernel passes all green"
